/**
 * @file
 * Function-effect annotations for the warm-interval hot path.
 *
 * PPEP's value is that prediction is cheap enough to run online every
 * 200 ms interval; PRs 3-4 made the steady-state governing loop
 * allocation-free, but that invariant was only proven dynamically
 * (test_zero_alloc). This header turns it into a *compile-time*
 * property: functions on the warm-interval call graph are annotated
 * PPEP_NONBLOCKING, and a Clang build with -Wfunction-effects promoted
 * to error refuses to compile any call from that graph into code that
 * may allocate, lock, throw, or otherwise block. Under GCC (and older
 * Clang) the macros are no-ops, so the annotations cost nothing where
 * they cannot be checked.
 *
 * Two escape hatches exist, and they are deliberately distinct:
 *
 *  - PPEP_RT_WARMUP_BEGIN/END marks a *warm-up-only* allocation: a
 *    resize()/assign()/push_back() that grows scratch on the first few
 *    intervals and is a no-op once capacity is warm. It suppresses the
 *    compile-time diagnostic AND disables RealtimeSanitizer for the
 *    scope, because the allocation is real (on cold iterations) and by
 *    design. test_zero_alloc remains the proof that these sites go
 *    quiet once warm.
 *
 *  - PPEP_RT_OPAQUE_BEGIN/END marks a call the effect analysis cannot
 *    see through but that is non-blocking in practice (std::to_chars,
 *    steady_clock::now, a std::function trampoline over a non-blocking
 *    callee). It suppresses only the compile-time diagnostic; RTSan
 *    still instruments the region at runtime, so a lie here is caught
 *    by the PPEP_SANITIZE=realtime CI job.
 *
 * Every escape must carry a `// rt-escape:` justification comment on
 * the line(s) above it — tools/ppep_lint.py rejects bare escapes.
 *
 * See DESIGN.md section 13 for the full static safety model.
 */

#ifndef PPEP_UTIL_ANNOTATIONS_HPP
#define PPEP_UTIL_ANNOTATIONS_HPP

// ---------------------------------------------------------------------------
// Effect attributes (Clang >= 20; no-ops elsewhere).
//
// [[clang::nonblocking]] is a *function-type* attribute: it must appear
// on every declaration of the function (including out-of-line
// definitions and virtual overrides), placed after the parameter list /
// cv-qualifiers / noexcept-specifier and before `override`.
// ---------------------------------------------------------------------------
#if defined(__clang__) && defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::nonblocking)
#define PPEP_HAS_FUNCTION_EFFECTS 1
#endif
#endif

#if defined(PPEP_HAS_FUNCTION_EFFECTS)
/** The function neither blocks nor allocates (implies nonallocating). */
#define PPEP_NONBLOCKING [[clang::nonblocking]]
/** The function does not allocate but may block. */
#define PPEP_NONALLOCATING [[clang::nonallocating]]
#else
#define PPEP_NONBLOCKING
#define PPEP_NONALLOCATING
#endif

// ---------------------------------------------------------------------------
// RealtimeSanitizer bridge (-fsanitize=realtime, PPEP_SANITIZE=realtime).
// ---------------------------------------------------------------------------
#if defined(__has_feature)
#if __has_feature(realtime_sanitizer)
#define PPEP_HAS_RTSAN 1
#endif
#endif

#if defined(PPEP_HAS_RTSAN)
#include <sanitizer/rtsan_interface.h>
#endif

namespace ppep::util {

/**
 * RAII scope that tells RealtimeSanitizer to ignore intercepted calls
 * (malloc, locks, blocking syscalls) until destruction. Used only by
 * PPEP_RT_WARMUP_* for allocations that are warm-up-growth by design;
 * everything else stays instrumented.
 */
class RtWarmupScope
{
  public:
#if defined(PPEP_HAS_RTSAN)
    RtWarmupScope() { __rtsan_disable(); }
    ~RtWarmupScope() { __rtsan_enable(); }
#else
    RtWarmupScope() = default;
    ~RtWarmupScope() = default;
#endif
    RtWarmupScope(const RtWarmupScope &) = delete;
    RtWarmupScope &operator=(const RtWarmupScope &) = delete;
};

} // namespace ppep::util

// ---------------------------------------------------------------------------
// Escape regions. The diagnostic pragmas are Clang-only; GCC has
// -Wunknown-pragmas inside -Wall, so they must vanish entirely there.
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define PPEP_RT_SUPPRESS_PUSH_                                                \
    _Pragma("clang diagnostic push")                                          \
        _Pragma("clang diagnostic ignored \"-Wfunction-effects\"")
#define PPEP_RT_SUPPRESS_POP_ _Pragma("clang diagnostic pop")
#else
#define PPEP_RT_SUPPRESS_PUSH_
#define PPEP_RT_SUPPRESS_POP_
#endif

/**
 * Warm-up-only allocation region: compile-time diagnostic suppressed
 * and RTSan disabled for the enclosed scope. The enclosed statements
 * must be capacity-growing no-ops once scratch is warm (proven by
 * test_zero_alloc). Requires a `// rt-escape:` justification comment.
 */
#define PPEP_RT_WARMUP_BEGIN                                                  \
    PPEP_RT_SUPPRESS_PUSH_                                                    \
    {                                                                         \
        [[maybe_unused]] const ::ppep::util::RtWarmupScope                    \
            ppep_rt_warmup_scope_;
#define PPEP_RT_WARMUP_END                                                    \
    }                                                                         \
    PPEP_RT_SUPPRESS_POP_

/**
 * Opaque-but-nonblocking call region: compile-time diagnostic
 * suppressed, RTSan left ON so the claim is still verified at runtime.
 * Requires a `// rt-escape:` justification comment.
 */
// Unlike WARMUP this introduces no scope (there is no RAII object), so
// declarations inside the region stay visible after it.
#define PPEP_RT_OPAQUE_BEGIN PPEP_RT_SUPPRESS_PUSH_
#define PPEP_RT_OPAQUE_END PPEP_RT_SUPPRESS_POP_

#endif // PPEP_UTIL_ANNOTATIONS_HPP
