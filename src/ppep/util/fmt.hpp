/**
 * @file
 * Allocation- and locale-free number formatting for the telemetry hot
 * path, built on std::to_chars.
 *
 * The per-interval encode cost of a governed session used to be
 * snprintf("%.10g") plus an ostringstream per numeric cell: every call
 * consults the C locale, and "%.10g" silently truncates doubles (a
 * round-trip needs up to 17 significant digits). This layer replaces
 * both with std::to_chars:
 *
 *  - doubles render as the *shortest* decimal that parses back to the
 *    exact same bits (strtod(fmt) == value, bit for bit);
 *  - integers render directly, no temporary std::string;
 *  - RowBuffer assembles a whole telemetry row in one preallocated
 *    buffer, so a warm sink performs zero heap allocations per row and
 *    hands the stream a single write() instead of a dozen operator<<.
 *
 * Output is locale-independent by construction (to_chars always uses
 * '.' and never grouping), which keeps CSV/JSONL traces machine-stable
 * on any host.
 */

#ifndef PPEP_UTIL_FMT_HPP
#define PPEP_UTIL_FMT_HPP

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "ppep/util/annotations.hpp"

namespace ppep::util::fmt {

/**
 * Worst-case characters for one formatted double: shortest round-trip
 * needs at most 17 significant digits plus sign, point, and a 5-char
 * exponent ("-1.7976931348623157e+308" is 24); 32 leaves slack.
 */
inline constexpr std::size_t kMaxDoubleChars = 32;

/** Worst-case characters for a formatted 64-bit unsigned integer. */
inline constexpr std::size_t kMaxU64Chars = 20;

/**
 * Shortest round-trip decimal for a finite double into [first, last).
 * Returns one past the last written char. @pre the range holds at
 * least kMaxDoubleChars bytes (to_chars then cannot fail).
 */
inline char *
writeDouble(char *first, char *last, double v) PPEP_NONALLOCATING
{
    // rt-escape: std::to_chars is opaque to the effect analysis but
    // writes into the caller's range without touching the heap.
    PPEP_RT_OPAQUE_BEGIN
    return std::to_chars(first, last, v).ptr;
    PPEP_RT_OPAQUE_END
}

/** Fixed-notation double with @p precision fractional digits. */
inline char *
writeFixed(char *first, char *last, double v, int precision)
    PPEP_NONALLOCATING
{
    // rt-escape: std::to_chars is opaque to the effect analysis but
    // writes into the caller's range without touching the heap.
    PPEP_RT_OPAQUE_BEGIN
    return std::to_chars(first, last, v, std::chars_format::fixed,
                         precision)
        .ptr;
    PPEP_RT_OPAQUE_END
}

/** Decimal unsigned integer into [first, last). */
inline char *
writeU64(char *first, char *last, std::uint64_t v) PPEP_NONALLOCATING
{
    // rt-escape: std::to_chars is opaque to the effect analysis but
    // writes into the caller's range without touching the heap.
    PPEP_RT_OPAQUE_BEGIN
    return std::to_chars(first, last, v).ptr;
    PPEP_RT_OPAQUE_END
}

/**
 * Append-only row encoder over one reusable buffer. Construct (or
 * reserve) once per sink; clear() + append per row. Growth doubles the
 * buffer, so capacity converges after the first few rows and a warm
 * encode performs no heap allocation.
 */
class RowBuffer
{
  public:
    explicit RowBuffer(std::size_t capacity = 256) { buf_.reserve(capacity); }

    void clear() PPEP_NONALLOCATING { buf_.clear(); }

    const char *data() const { return buf_.data(); }
    std::size_t size() const { return buf_.size(); }
    std::string_view view() const { return {buf_.data(), buf_.size()}; }

    void append(char c) PPEP_NONALLOCATING
    {
        // rt-escape: push_back allocates only on capacity growth, which
        // converges after the first few rows (warm-up growth).
        PPEP_RT_WARMUP_BEGIN
        buf_.push_back(c);
        PPEP_RT_WARMUP_END
    }

    void append(std::string_view s) PPEP_NONALLOCATING
    {
        // rt-escape: insert allocates only on capacity growth, which
        // converges after the first few rows (warm-up growth).
        PPEP_RT_WARMUP_BEGIN
        buf_.insert(buf_.end(), s.begin(), s.end());
        PPEP_RT_WARMUP_END
    }

    /** Shortest round-trip decimal (see writeDouble). */
    void appendDouble(double v) PPEP_NONALLOCATING
    {
        char *p = grow(kMaxDoubleChars);
        shrink(writeDouble(p, p + kMaxDoubleChars, v));
    }

    /** JSON number: finite values round-trip, NaN/inf become null. */
    void appendJsonDouble(double v) PPEP_NONALLOCATING
    {
        if (std::isfinite(v))
            appendDouble(v);
        else
            append(std::string_view{"null"});
    }

    /** Fixed-notation double (human-facing summaries, not traces). */
    void appendFixed(double v, int precision) PPEP_NONALLOCATING
    {
        // Fixed notation of a huge double can need ~310 integral digits.
        const std::size_t need =
            std::isfinite(v) ? 336 + static_cast<std::size_t>(precision)
                             : kMaxDoubleChars;
        char *p = grow(need);
        shrink(writeFixed(p, p + need, v, precision));
    }

    void appendU64(std::uint64_t v) PPEP_NONALLOCATING
    {
        char *p = grow(kMaxU64Chars);
        shrink(writeU64(p, p + kMaxU64Chars, v));
    }

  private:
    /** Make room for @p n more bytes; return the write cursor. */
    char *grow(std::size_t n) PPEP_NONALLOCATING
    {
        const std::size_t len = buf_.size();
        // rt-escape: resize allocates only on capacity growth, which
        // converges after the first few rows (warm-up growth).
        PPEP_RT_WARMUP_BEGIN
        buf_.resize(len + n);
        PPEP_RT_WARMUP_END
        return buf_.data() + len;
    }

    /** Drop the unused tail after an in-place write ending at @p end. */
    void shrink(char *end) PPEP_NONALLOCATING
    {
        // rt-escape: shrinking resize never reallocates a vector<char>;
        // the growth branch inside resize() is statically visible to
        // the analysis but unreachable here. RTSan verifies at runtime.
        PPEP_RT_OPAQUE_BEGIN
        buf_.resize(static_cast<std::size_t>(end - buf_.data()));
        PPEP_RT_OPAQUE_END
    }

    std::vector<char> buf_;
};

} // namespace ppep::util::fmt

#endif // PPEP_UTIL_FMT_HPP
