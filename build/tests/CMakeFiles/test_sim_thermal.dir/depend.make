# Empty dependencies file for test_sim_thermal.
# This may be replaced when dependencies are built.
