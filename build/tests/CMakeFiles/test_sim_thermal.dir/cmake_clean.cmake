file(REMOVE_RECURSE
  "CMakeFiles/test_sim_thermal.dir/test_sim_thermal.cpp.o"
  "CMakeFiles/test_sim_thermal.dir/test_sim_thermal.cpp.o.d"
  "test_sim_thermal"
  "test_sim_thermal.pdb"
  "test_sim_thermal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
