file(REMOVE_RECURSE
  "CMakeFiles/test_governor_capping.dir/test_governor_capping.cpp.o"
  "CMakeFiles/test_governor_capping.dir/test_governor_capping.cpp.o.d"
  "test_governor_capping"
  "test_governor_capping.pdb"
  "test_governor_capping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governor_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
