# Empty dependencies file for test_governor_capping.
# This may be replaced when dependencies are built.
