file(REMOVE_RECURSE
  "CMakeFiles/test_sim_chip.dir/test_sim_chip.cpp.o"
  "CMakeFiles/test_sim_chip.dir/test_sim_chip.cpp.o.d"
  "test_sim_chip"
  "test_sim_chip.pdb"
  "test_sim_chip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
