# Empty dependencies file for test_sim_chip.
# This may be replaced when dependencies are built.
