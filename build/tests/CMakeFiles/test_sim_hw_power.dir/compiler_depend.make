# Empty compiler generated dependencies file for test_sim_hw_power.
# This may be replaced when dependencies are built.
