# Empty compiler generated dependencies file for test_cross_platform.
# This may be replaced when dependencies are built.
