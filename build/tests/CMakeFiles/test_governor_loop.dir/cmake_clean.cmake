file(REMOVE_RECURSE
  "CMakeFiles/test_governor_loop.dir/test_governor_loop.cpp.o"
  "CMakeFiles/test_governor_loop.dir/test_governor_loop.cpp.o.d"
  "test_governor_loop"
  "test_governor_loop.pdb"
  "test_governor_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governor_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
