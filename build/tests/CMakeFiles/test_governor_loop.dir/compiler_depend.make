# Empty compiler generated dependencies file for test_governor_loop.
# This may be replaced when dependencies are built.
