# Empty compiler generated dependencies file for test_sim_msr.
# This may be replaced when dependencies are built.
