file(REMOVE_RECURSE
  "CMakeFiles/test_sim_msr.dir/test_sim_msr.cpp.o"
  "CMakeFiles/test_sim_msr.dir/test_sim_msr.cpp.o.d"
  "test_sim_msr"
  "test_sim_msr.pdb"
  "test_sim_msr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
