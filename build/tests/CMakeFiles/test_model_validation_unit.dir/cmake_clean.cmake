file(REMOVE_RECURSE
  "CMakeFiles/test_model_validation_unit.dir/test_model_validation_unit.cpp.o"
  "CMakeFiles/test_model_validation_unit.dir/test_model_validation_unit.cpp.o.d"
  "test_model_validation_unit"
  "test_model_validation_unit.pdb"
  "test_model_validation_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_validation_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
