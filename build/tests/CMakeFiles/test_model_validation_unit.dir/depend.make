# Empty dependencies file for test_model_validation_unit.
# This may be replaced when dependencies are built.
