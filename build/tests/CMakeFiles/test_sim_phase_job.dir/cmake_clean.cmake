file(REMOVE_RECURSE
  "CMakeFiles/test_sim_phase_job.dir/test_sim_phase_job.cpp.o"
  "CMakeFiles/test_sim_phase_job.dir/test_sim_phase_job.cpp.o.d"
  "test_sim_phase_job"
  "test_sim_phase_job.pdb"
  "test_sim_phase_job[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_phase_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
