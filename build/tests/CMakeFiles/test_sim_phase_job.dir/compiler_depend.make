# Empty compiler generated dependencies file for test_sim_phase_job.
# This may be replaced when dependencies are built.
