file(REMOVE_RECURSE
  "CMakeFiles/test_governor_energy.dir/test_governor_energy.cpp.o"
  "CMakeFiles/test_governor_energy.dir/test_governor_energy.cpp.o.d"
  "test_governor_energy"
  "test_governor_energy.pdb"
  "test_governor_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governor_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
