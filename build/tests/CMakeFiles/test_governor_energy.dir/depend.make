# Empty dependencies file for test_governor_energy.
# This may be replaced when dependencies are built.
