# Empty dependencies file for test_math_matrix.
# This may be replaced when dependencies are built.
