file(REMOVE_RECURSE
  "CMakeFiles/test_math_matrix.dir/test_math_matrix.cpp.o"
  "CMakeFiles/test_math_matrix.dir/test_math_matrix.cpp.o.d"
  "test_math_matrix"
  "test_math_matrix.pdb"
  "test_math_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
