# Empty dependencies file for test_sim_northbridge.
# This may be replaced when dependencies are built.
