file(REMOVE_RECURSE
  "CMakeFiles/test_sim_northbridge.dir/test_sim_northbridge.cpp.o"
  "CMakeFiles/test_sim_northbridge.dir/test_sim_northbridge.cpp.o.d"
  "test_sim_northbridge"
  "test_sim_northbridge.pdb"
  "test_sim_northbridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_northbridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
