file(REMOVE_RECURSE
  "CMakeFiles/test_model_green_governors.dir/test_model_green_governors.cpp.o"
  "CMakeFiles/test_model_green_governors.dir/test_model_green_governors.cpp.o.d"
  "test_model_green_governors"
  "test_model_green_governors.pdb"
  "test_model_green_governors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_green_governors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
