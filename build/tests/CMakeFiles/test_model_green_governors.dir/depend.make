# Empty dependencies file for test_model_green_governors.
# This may be replaced when dependencies are built.
