# Empty dependencies file for test_model_ppep.
# This may be replaced when dependencies are built.
