file(REMOVE_RECURSE
  "CMakeFiles/test_model_ppep.dir/test_model_ppep.cpp.o"
  "CMakeFiles/test_model_ppep.dir/test_model_ppep.cpp.o.d"
  "test_model_ppep"
  "test_model_ppep.pdb"
  "test_model_ppep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_ppep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
