# Empty compiler generated dependencies file for test_model_dynamic_power.
# This may be replaced when dependencies are built.
