# Empty dependencies file for test_model_idle_power.
# This may be replaced when dependencies are built.
