# Empty dependencies file for test_math_polynomial.
# This may be replaced when dependencies are built.
