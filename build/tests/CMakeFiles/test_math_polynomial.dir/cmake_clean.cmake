file(REMOVE_RECURSE
  "CMakeFiles/test_math_polynomial.dir/test_math_polynomial.cpp.o"
  "CMakeFiles/test_math_polynomial.dir/test_math_polynomial.cpp.o.d"
  "test_math_polynomial"
  "test_math_polynomial.pdb"
  "test_math_polynomial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_polynomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
