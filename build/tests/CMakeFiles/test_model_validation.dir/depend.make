# Empty dependencies file for test_model_validation.
# This may be replaced when dependencies are built.
