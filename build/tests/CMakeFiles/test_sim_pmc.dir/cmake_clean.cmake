file(REMOVE_RECURSE
  "CMakeFiles/test_sim_pmc.dir/test_sim_pmc.cpp.o"
  "CMakeFiles/test_sim_pmc.dir/test_sim_pmc.cpp.o.d"
  "test_sim_pmc"
  "test_sim_pmc.pdb"
  "test_sim_pmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_pmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
