# Empty dependencies file for test_sim_pmc.
# This may be replaced when dependencies are built.
