file(REMOVE_RECURSE
  "CMakeFiles/test_property_random_workloads.dir/test_property_random_workloads.cpp.o"
  "CMakeFiles/test_property_random_workloads.dir/test_property_random_workloads.cpp.o.d"
  "test_property_random_workloads"
  "test_property_random_workloads.pdb"
  "test_property_random_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_random_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
