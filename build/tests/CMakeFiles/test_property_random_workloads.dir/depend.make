# Empty dependencies file for test_property_random_workloads.
# This may be replaced when dependencies are built.
