file(REMOVE_RECURSE
  "CMakeFiles/test_model_per_core_power.dir/test_model_per_core_power.cpp.o"
  "CMakeFiles/test_model_per_core_power.dir/test_model_per_core_power.cpp.o.d"
  "test_model_per_core_power"
  "test_model_per_core_power.pdb"
  "test_model_per_core_power[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_per_core_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
