# Empty compiler generated dependencies file for test_model_per_core_power.
# This may be replaced when dependencies are built.
