file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_plausibility.dir/test_workloads_plausibility.cpp.o"
  "CMakeFiles/test_workloads_plausibility.dir/test_workloads_plausibility.cpp.o.d"
  "test_workloads_plausibility"
  "test_workloads_plausibility.pdb"
  "test_workloads_plausibility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_plausibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
