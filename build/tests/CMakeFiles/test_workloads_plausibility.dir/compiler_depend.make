# Empty compiler generated dependencies file for test_workloads_plausibility.
# This may be replaced when dependencies are built.
