file(REMOVE_RECURSE
  "CMakeFiles/test_thermal_management.dir/test_thermal_management.cpp.o"
  "CMakeFiles/test_thermal_management.dir/test_thermal_management.cpp.o.d"
  "test_thermal_management"
  "test_thermal_management.pdb"
  "test_thermal_management[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thermal_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
