
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_thermal_management.cpp" "tests/CMakeFiles/test_thermal_management.dir/test_thermal_management.cpp.o" "gcc" "tests/CMakeFiles/test_thermal_management.dir/test_thermal_management.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppep/governor/CMakeFiles/ppep_governor.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/model/CMakeFiles/ppep_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/trace/CMakeFiles/ppep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/workloads/CMakeFiles/ppep_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/sim/CMakeFiles/ppep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/math/CMakeFiles/ppep_math.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/util/CMakeFiles/ppep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
