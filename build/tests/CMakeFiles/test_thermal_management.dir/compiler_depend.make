# Empty compiler generated dependencies file for test_thermal_management.
# This may be replaced when dependencies are built.
