# Empty compiler generated dependencies file for test_math_least_squares.
# This may be replaced when dependencies are built.
