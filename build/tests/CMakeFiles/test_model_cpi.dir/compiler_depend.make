# Empty compiler generated dependencies file for test_model_cpi.
# This may be replaced when dependencies are built.
