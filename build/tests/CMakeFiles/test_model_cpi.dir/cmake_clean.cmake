file(REMOVE_RECURSE
  "CMakeFiles/test_model_cpi.dir/test_model_cpi.cpp.o"
  "CMakeFiles/test_model_cpi.dir/test_model_cpi.cpp.o.d"
  "test_model_cpi"
  "test_model_cpi.pdb"
  "test_model_cpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
