# Empty compiler generated dependencies file for test_model_serialization.
# This may be replaced when dependencies are built.
