file(REMOVE_RECURSE
  "CMakeFiles/test_model_serialization.dir/test_model_serialization.cpp.o"
  "CMakeFiles/test_model_serialization.dir/test_model_serialization.cpp.o.d"
  "test_model_serialization"
  "test_model_serialization.pdb"
  "test_model_serialization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
