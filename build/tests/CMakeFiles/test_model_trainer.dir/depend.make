# Empty dependencies file for test_model_trainer.
# This may be replaced when dependencies are built.
