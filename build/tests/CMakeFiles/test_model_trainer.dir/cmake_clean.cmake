file(REMOVE_RECURSE
  "CMakeFiles/test_model_trainer.dir/test_model_trainer.cpp.o"
  "CMakeFiles/test_model_trainer.dir/test_model_trainer.cpp.o.d"
  "test_model_trainer"
  "test_model_trainer.pdb"
  "test_model_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
