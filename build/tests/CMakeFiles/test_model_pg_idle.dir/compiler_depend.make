# Empty compiler generated dependencies file for test_model_pg_idle.
# This may be replaced when dependencies are built.
