file(REMOVE_RECURSE
  "CMakeFiles/test_model_pg_idle.dir/test_model_pg_idle.cpp.o"
  "CMakeFiles/test_model_pg_idle.dir/test_model_pg_idle.cpp.o.d"
  "test_model_pg_idle"
  "test_model_pg_idle.pdb"
  "test_model_pg_idle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_pg_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
