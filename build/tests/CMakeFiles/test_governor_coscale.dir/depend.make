# Empty dependencies file for test_governor_coscale.
# This may be replaced when dependencies are built.
