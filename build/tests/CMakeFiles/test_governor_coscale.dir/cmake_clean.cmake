file(REMOVE_RECURSE
  "CMakeFiles/test_governor_coscale.dir/test_governor_coscale.cpp.o"
  "CMakeFiles/test_governor_coscale.dir/test_governor_coscale.cpp.o.d"
  "test_governor_coscale"
  "test_governor_coscale.pdb"
  "test_governor_coscale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_governor_coscale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
