# Empty compiler generated dependencies file for test_sim_boost.
# This may be replaced when dependencies are built.
