file(REMOVE_RECURSE
  "CMakeFiles/test_sim_boost.dir/test_sim_boost.cpp.o"
  "CMakeFiles/test_sim_boost.dir/test_sim_boost.cpp.o.d"
  "test_sim_boost"
  "test_sim_boost.pdb"
  "test_sim_boost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_boost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
