# Empty compiler generated dependencies file for test_model_chip_power.
# This may be replaced when dependencies are built.
