file(REMOVE_RECURSE
  "CMakeFiles/test_sim_vf_events.dir/test_sim_vf_events.cpp.o"
  "CMakeFiles/test_sim_vf_events.dir/test_sim_vf_events.cpp.o.d"
  "test_sim_vf_events"
  "test_sim_vf_events.pdb"
  "test_sim_vf_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_vf_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
