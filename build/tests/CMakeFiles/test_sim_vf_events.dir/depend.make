# Empty dependencies file for test_sim_vf_events.
# This may be replaced when dependencies are built.
