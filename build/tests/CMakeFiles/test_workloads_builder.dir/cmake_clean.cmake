file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_builder.dir/test_workloads_builder.cpp.o"
  "CMakeFiles/test_workloads_builder.dir/test_workloads_builder.cpp.o.d"
  "test_workloads_builder"
  "test_workloads_builder.pdb"
  "test_workloads_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
