# Empty dependencies file for test_workloads_builder.
# This may be replaced when dependencies are built.
