# Empty compiler generated dependencies file for test_math_kfold.
# This may be replaced when dependencies are built.
