file(REMOVE_RECURSE
  "CMakeFiles/test_math_kfold.dir/test_math_kfold.cpp.o"
  "CMakeFiles/test_math_kfold.dir/test_math_kfold.cpp.o.d"
  "test_math_kfold"
  "test_math_kfold.pdb"
  "test_math_kfold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math_kfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
