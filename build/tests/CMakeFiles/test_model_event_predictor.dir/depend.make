# Empty dependencies file for test_model_event_predictor.
# This may be replaced when dependencies are built.
