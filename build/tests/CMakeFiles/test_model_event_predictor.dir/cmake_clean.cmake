file(REMOVE_RECURSE
  "CMakeFiles/test_model_event_predictor.dir/test_model_event_predictor.cpp.o"
  "CMakeFiles/test_model_event_predictor.dir/test_model_event_predictor.cpp.o.d"
  "test_model_event_predictor"
  "test_model_event_predictor.pdb"
  "test_model_event_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_event_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
