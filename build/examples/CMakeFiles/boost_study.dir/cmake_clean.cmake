file(REMOVE_RECURSE
  "CMakeFiles/boost_study.dir/boost_study.cpp.o"
  "CMakeFiles/boost_study.dir/boost_study.cpp.o.d"
  "boost_study"
  "boost_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boost_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
