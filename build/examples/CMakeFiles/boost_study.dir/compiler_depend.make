# Empty compiler generated dependencies file for boost_study.
# This may be replaced when dependencies are built.
