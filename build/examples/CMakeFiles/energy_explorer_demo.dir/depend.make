# Empty dependencies file for energy_explorer_demo.
# This may be replaced when dependencies are built.
