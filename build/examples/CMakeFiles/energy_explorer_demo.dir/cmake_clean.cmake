file(REMOVE_RECURSE
  "CMakeFiles/energy_explorer_demo.dir/energy_explorer_demo.cpp.o"
  "CMakeFiles/energy_explorer_demo.dir/energy_explorer_demo.cpp.o.d"
  "energy_explorer_demo"
  "energy_explorer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_explorer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
