file(REMOVE_RECURSE
  "CMakeFiles/ppep_daemon.dir/ppep_daemon.cpp.o"
  "CMakeFiles/ppep_daemon.dir/ppep_daemon.cpp.o.d"
  "ppep_daemon"
  "ppep_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
