# Empty dependencies file for ppep_daemon.
# This may be replaced when dependencies are built.
