# Empty dependencies file for thermal_cap_demo.
# This may be replaced when dependencies are built.
