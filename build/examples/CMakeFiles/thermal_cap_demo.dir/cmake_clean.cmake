file(REMOVE_RECURSE
  "CMakeFiles/thermal_cap_demo.dir/thermal_cap_demo.cpp.o"
  "CMakeFiles/thermal_cap_demo.dir/thermal_cap_demo.cpp.o.d"
  "thermal_cap_demo"
  "thermal_cap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_cap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
