# Empty compiler generated dependencies file for power_capping_demo.
# This may be replaced when dependencies are built.
