file(REMOVE_RECURSE
  "CMakeFiles/power_capping_demo.dir/power_capping_demo.cpp.o"
  "CMakeFiles/power_capping_demo.dir/power_capping_demo.cpp.o.d"
  "power_capping_demo"
  "power_capping_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_capping_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
