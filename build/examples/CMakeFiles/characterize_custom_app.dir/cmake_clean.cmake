file(REMOVE_RECURSE
  "CMakeFiles/characterize_custom_app.dir/characterize_custom_app.cpp.o"
  "CMakeFiles/characterize_custom_app.dir/characterize_custom_app.cpp.o.d"
  "characterize_custom_app"
  "characterize_custom_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_custom_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
