# Empty compiler generated dependencies file for characterize_custom_app.
# This may be replaced when dependencies are built.
