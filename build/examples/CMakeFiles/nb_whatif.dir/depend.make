# Empty dependencies file for nb_whatif.
# This may be replaced when dependencies are built.
