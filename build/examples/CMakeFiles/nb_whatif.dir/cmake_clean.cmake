file(REMOVE_RECURSE
  "CMakeFiles/nb_whatif.dir/nb_whatif.cpp.o"
  "CMakeFiles/nb_whatif.dir/nb_whatif.cpp.o.d"
  "nb_whatif"
  "nb_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nb_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
