# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "458.sjeng")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_energy_explorer "/root/repo/build/examples/energy_explorer_demo" "433.milc" "2")
set_tests_properties(example_energy_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nb_whatif "/root/repo/build/examples/nb_whatif" "458.sjeng" "1")
set_tests_properties(example_nb_whatif PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ppep_daemon "/root/repo/build/examples/ppep_daemon" "8")
set_tests_properties(example_ppep_daemon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_boost_study "/root/repo/build/examples/boost_study" "42" "40")
set_tests_properties(example_boost_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_characterize "/root/repo/build/examples/characterize_custom_app" "characterize_test_models.txt")
set_tests_properties(example_characterize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_thermal_cap "/root/repo/build/examples/thermal_cap_demo" "328" "60")
set_tests_properties(example_thermal_cap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
