# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/ppep" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_train_predict "sh" "-c" "/root/repo/build/tools/ppep train --out ppep_cli_test_models.txt --quick && /root/repo/build/tools/ppep predict --models ppep_cli_test_models.txt -b EP -n 2")
set_tests_properties(cli_train_predict PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_validate "/root/repo/build/tools/ppep" "validate" "--quick")
set_tests_properties(cli_validate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
