file(REMOVE_RECURSE
  "CMakeFiles/ppep.dir/ppep_cli.cpp.o"
  "CMakeFiles/ppep.dir/ppep_cli.cpp.o.d"
  "ppep"
  "ppep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
