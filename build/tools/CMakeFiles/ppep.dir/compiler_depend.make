# Empty compiler generated dependencies file for ppep.
# This may be replaced when dependencies are built.
