file(REMOVE_RECURSE
  "CMakeFiles/ppep_trace.dir/collector.cpp.o"
  "CMakeFiles/ppep_trace.dir/collector.cpp.o.d"
  "CMakeFiles/ppep_trace.dir/export.cpp.o"
  "CMakeFiles/ppep_trace.dir/export.cpp.o.d"
  "CMakeFiles/ppep_trace.dir/interval.cpp.o"
  "CMakeFiles/ppep_trace.dir/interval.cpp.o.d"
  "CMakeFiles/ppep_trace.dir/segmenter.cpp.o"
  "CMakeFiles/ppep_trace.dir/segmenter.cpp.o.d"
  "libppep_trace.a"
  "libppep_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
