# Empty dependencies file for ppep_trace.
# This may be replaced when dependencies are built.
