
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppep/trace/collector.cpp" "src/ppep/trace/CMakeFiles/ppep_trace.dir/collector.cpp.o" "gcc" "src/ppep/trace/CMakeFiles/ppep_trace.dir/collector.cpp.o.d"
  "/root/repo/src/ppep/trace/export.cpp" "src/ppep/trace/CMakeFiles/ppep_trace.dir/export.cpp.o" "gcc" "src/ppep/trace/CMakeFiles/ppep_trace.dir/export.cpp.o.d"
  "/root/repo/src/ppep/trace/interval.cpp" "src/ppep/trace/CMakeFiles/ppep_trace.dir/interval.cpp.o" "gcc" "src/ppep/trace/CMakeFiles/ppep_trace.dir/interval.cpp.o.d"
  "/root/repo/src/ppep/trace/segmenter.cpp" "src/ppep/trace/CMakeFiles/ppep_trace.dir/segmenter.cpp.o" "gcc" "src/ppep/trace/CMakeFiles/ppep_trace.dir/segmenter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppep/sim/CMakeFiles/ppep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/util/CMakeFiles/ppep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
