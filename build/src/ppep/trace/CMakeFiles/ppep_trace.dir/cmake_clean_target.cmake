file(REMOVE_RECURSE
  "libppep_trace.a"
)
