# Empty compiler generated dependencies file for ppep_workloads.
# This may be replaced when dependencies are built.
