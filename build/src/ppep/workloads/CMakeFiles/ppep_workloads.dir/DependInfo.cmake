
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppep/workloads/builder.cpp" "src/ppep/workloads/CMakeFiles/ppep_workloads.dir/builder.cpp.o" "gcc" "src/ppep/workloads/CMakeFiles/ppep_workloads.dir/builder.cpp.o.d"
  "/root/repo/src/ppep/workloads/microbench.cpp" "src/ppep/workloads/CMakeFiles/ppep_workloads.dir/microbench.cpp.o" "gcc" "src/ppep/workloads/CMakeFiles/ppep_workloads.dir/microbench.cpp.o.d"
  "/root/repo/src/ppep/workloads/suite.cpp" "src/ppep/workloads/CMakeFiles/ppep_workloads.dir/suite.cpp.o" "gcc" "src/ppep/workloads/CMakeFiles/ppep_workloads.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppep/sim/CMakeFiles/ppep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/util/CMakeFiles/ppep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
