file(REMOVE_RECURSE
  "CMakeFiles/ppep_workloads.dir/builder.cpp.o"
  "CMakeFiles/ppep_workloads.dir/builder.cpp.o.d"
  "CMakeFiles/ppep_workloads.dir/microbench.cpp.o"
  "CMakeFiles/ppep_workloads.dir/microbench.cpp.o.d"
  "CMakeFiles/ppep_workloads.dir/suite.cpp.o"
  "CMakeFiles/ppep_workloads.dir/suite.cpp.o.d"
  "libppep_workloads.a"
  "libppep_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
