file(REMOVE_RECURSE
  "libppep_workloads.a"
)
