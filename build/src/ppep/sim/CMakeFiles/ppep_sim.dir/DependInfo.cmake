
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppep/sim/chip.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/chip.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/chip.cpp.o.d"
  "/root/repo/src/ppep/sim/chip_config.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/chip_config.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/chip_config.cpp.o.d"
  "/root/repo/src/ppep/sim/core_model.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/core_model.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/core_model.cpp.o.d"
  "/root/repo/src/ppep/sim/events.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/events.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/events.cpp.o.d"
  "/root/repo/src/ppep/sim/hw_power_model.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/hw_power_model.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/hw_power_model.cpp.o.d"
  "/root/repo/src/ppep/sim/msr.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/msr.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/msr.cpp.o.d"
  "/root/repo/src/ppep/sim/northbridge.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/northbridge.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/northbridge.cpp.o.d"
  "/root/repo/src/ppep/sim/phase.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/phase.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/phase.cpp.o.d"
  "/root/repo/src/ppep/sim/pmc.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/pmc.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/pmc.cpp.o.d"
  "/root/repo/src/ppep/sim/power_sensor.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/power_sensor.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/power_sensor.cpp.o.d"
  "/root/repo/src/ppep/sim/thermal_model.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/thermal_model.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/thermal_model.cpp.o.d"
  "/root/repo/src/ppep/sim/vf_state.cpp" "src/ppep/sim/CMakeFiles/ppep_sim.dir/vf_state.cpp.o" "gcc" "src/ppep/sim/CMakeFiles/ppep_sim.dir/vf_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppep/util/CMakeFiles/ppep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
