# Empty dependencies file for ppep_sim.
# This may be replaced when dependencies are built.
