file(REMOVE_RECURSE
  "libppep_sim.a"
)
