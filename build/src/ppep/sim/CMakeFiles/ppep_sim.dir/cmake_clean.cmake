file(REMOVE_RECURSE
  "CMakeFiles/ppep_sim.dir/chip.cpp.o"
  "CMakeFiles/ppep_sim.dir/chip.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/chip_config.cpp.o"
  "CMakeFiles/ppep_sim.dir/chip_config.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/core_model.cpp.o"
  "CMakeFiles/ppep_sim.dir/core_model.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/events.cpp.o"
  "CMakeFiles/ppep_sim.dir/events.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/hw_power_model.cpp.o"
  "CMakeFiles/ppep_sim.dir/hw_power_model.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/msr.cpp.o"
  "CMakeFiles/ppep_sim.dir/msr.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/northbridge.cpp.o"
  "CMakeFiles/ppep_sim.dir/northbridge.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/phase.cpp.o"
  "CMakeFiles/ppep_sim.dir/phase.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/pmc.cpp.o"
  "CMakeFiles/ppep_sim.dir/pmc.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/power_sensor.cpp.o"
  "CMakeFiles/ppep_sim.dir/power_sensor.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/thermal_model.cpp.o"
  "CMakeFiles/ppep_sim.dir/thermal_model.cpp.o.d"
  "CMakeFiles/ppep_sim.dir/vf_state.cpp.o"
  "CMakeFiles/ppep_sim.dir/vf_state.cpp.o.d"
  "libppep_sim.a"
  "libppep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
