# CMake generated Testfile for 
# Source directory: /root/repo/src/ppep/sim
# Build directory: /root/repo/build/src/ppep/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
