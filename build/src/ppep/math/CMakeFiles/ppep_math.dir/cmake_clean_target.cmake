file(REMOVE_RECURSE
  "libppep_math.a"
)
