
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppep/math/kfold.cpp" "src/ppep/math/CMakeFiles/ppep_math.dir/kfold.cpp.o" "gcc" "src/ppep/math/CMakeFiles/ppep_math.dir/kfold.cpp.o.d"
  "/root/repo/src/ppep/math/least_squares.cpp" "src/ppep/math/CMakeFiles/ppep_math.dir/least_squares.cpp.o" "gcc" "src/ppep/math/CMakeFiles/ppep_math.dir/least_squares.cpp.o.d"
  "/root/repo/src/ppep/math/matrix.cpp" "src/ppep/math/CMakeFiles/ppep_math.dir/matrix.cpp.o" "gcc" "src/ppep/math/CMakeFiles/ppep_math.dir/matrix.cpp.o.d"
  "/root/repo/src/ppep/math/polynomial.cpp" "src/ppep/math/CMakeFiles/ppep_math.dir/polynomial.cpp.o" "gcc" "src/ppep/math/CMakeFiles/ppep_math.dir/polynomial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppep/util/CMakeFiles/ppep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
