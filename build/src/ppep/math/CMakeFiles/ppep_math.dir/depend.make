# Empty dependencies file for ppep_math.
# This may be replaced when dependencies are built.
