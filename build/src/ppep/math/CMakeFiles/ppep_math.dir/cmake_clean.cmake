file(REMOVE_RECURSE
  "CMakeFiles/ppep_math.dir/kfold.cpp.o"
  "CMakeFiles/ppep_math.dir/kfold.cpp.o.d"
  "CMakeFiles/ppep_math.dir/least_squares.cpp.o"
  "CMakeFiles/ppep_math.dir/least_squares.cpp.o.d"
  "CMakeFiles/ppep_math.dir/matrix.cpp.o"
  "CMakeFiles/ppep_math.dir/matrix.cpp.o.d"
  "CMakeFiles/ppep_math.dir/polynomial.cpp.o"
  "CMakeFiles/ppep_math.dir/polynomial.cpp.o.d"
  "libppep_math.a"
  "libppep_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
