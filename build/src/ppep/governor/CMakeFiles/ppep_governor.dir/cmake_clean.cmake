file(REMOVE_RECURSE
  "CMakeFiles/ppep_governor.dir/coscale_lite.cpp.o"
  "CMakeFiles/ppep_governor.dir/coscale_lite.cpp.o.d"
  "CMakeFiles/ppep_governor.dir/energy_explorer.cpp.o"
  "CMakeFiles/ppep_governor.dir/energy_explorer.cpp.o.d"
  "CMakeFiles/ppep_governor.dir/energy_governor.cpp.o"
  "CMakeFiles/ppep_governor.dir/energy_governor.cpp.o.d"
  "CMakeFiles/ppep_governor.dir/governor.cpp.o"
  "CMakeFiles/ppep_governor.dir/governor.cpp.o.d"
  "CMakeFiles/ppep_governor.dir/iterative_capping.cpp.o"
  "CMakeFiles/ppep_governor.dir/iterative_capping.cpp.o.d"
  "CMakeFiles/ppep_governor.dir/ppep_capping.cpp.o"
  "CMakeFiles/ppep_governor.dir/ppep_capping.cpp.o.d"
  "CMakeFiles/ppep_governor.dir/thermal_cap.cpp.o"
  "CMakeFiles/ppep_governor.dir/thermal_cap.cpp.o.d"
  "libppep_governor.a"
  "libppep_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
