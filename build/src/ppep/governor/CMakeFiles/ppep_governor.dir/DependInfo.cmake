
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppep/governor/coscale_lite.cpp" "src/ppep/governor/CMakeFiles/ppep_governor.dir/coscale_lite.cpp.o" "gcc" "src/ppep/governor/CMakeFiles/ppep_governor.dir/coscale_lite.cpp.o.d"
  "/root/repo/src/ppep/governor/energy_explorer.cpp" "src/ppep/governor/CMakeFiles/ppep_governor.dir/energy_explorer.cpp.o" "gcc" "src/ppep/governor/CMakeFiles/ppep_governor.dir/energy_explorer.cpp.o.d"
  "/root/repo/src/ppep/governor/energy_governor.cpp" "src/ppep/governor/CMakeFiles/ppep_governor.dir/energy_governor.cpp.o" "gcc" "src/ppep/governor/CMakeFiles/ppep_governor.dir/energy_governor.cpp.o.d"
  "/root/repo/src/ppep/governor/governor.cpp" "src/ppep/governor/CMakeFiles/ppep_governor.dir/governor.cpp.o" "gcc" "src/ppep/governor/CMakeFiles/ppep_governor.dir/governor.cpp.o.d"
  "/root/repo/src/ppep/governor/iterative_capping.cpp" "src/ppep/governor/CMakeFiles/ppep_governor.dir/iterative_capping.cpp.o" "gcc" "src/ppep/governor/CMakeFiles/ppep_governor.dir/iterative_capping.cpp.o.d"
  "/root/repo/src/ppep/governor/ppep_capping.cpp" "src/ppep/governor/CMakeFiles/ppep_governor.dir/ppep_capping.cpp.o" "gcc" "src/ppep/governor/CMakeFiles/ppep_governor.dir/ppep_capping.cpp.o.d"
  "/root/repo/src/ppep/governor/thermal_cap.cpp" "src/ppep/governor/CMakeFiles/ppep_governor.dir/thermal_cap.cpp.o" "gcc" "src/ppep/governor/CMakeFiles/ppep_governor.dir/thermal_cap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppep/model/CMakeFiles/ppep_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/trace/CMakeFiles/ppep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/sim/CMakeFiles/ppep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/workloads/CMakeFiles/ppep_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/util/CMakeFiles/ppep_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/math/CMakeFiles/ppep_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
