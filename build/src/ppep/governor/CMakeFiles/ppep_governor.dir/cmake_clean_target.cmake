file(REMOVE_RECURSE
  "libppep_governor.a"
)
