# Empty compiler generated dependencies file for ppep_governor.
# This may be replaced when dependencies are built.
