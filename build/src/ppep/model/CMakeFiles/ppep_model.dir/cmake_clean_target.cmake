file(REMOVE_RECURSE
  "libppep_model.a"
)
