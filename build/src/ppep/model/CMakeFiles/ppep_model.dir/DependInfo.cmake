
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppep/model/chip_power_model.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/chip_power_model.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/chip_power_model.cpp.o.d"
  "/root/repo/src/ppep/model/cpi_model.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/cpi_model.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/cpi_model.cpp.o.d"
  "/root/repo/src/ppep/model/dynamic_power_model.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/dynamic_power_model.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/dynamic_power_model.cpp.o.d"
  "/root/repo/src/ppep/model/event_predictor.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/event_predictor.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/event_predictor.cpp.o.d"
  "/root/repo/src/ppep/model/green_governors.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/green_governors.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/green_governors.cpp.o.d"
  "/root/repo/src/ppep/model/idle_power_model.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/idle_power_model.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/idle_power_model.cpp.o.d"
  "/root/repo/src/ppep/model/per_core_power.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/per_core_power.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/per_core_power.cpp.o.d"
  "/root/repo/src/ppep/model/pg_idle_model.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/pg_idle_model.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/pg_idle_model.cpp.o.d"
  "/root/repo/src/ppep/model/ppep.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/ppep.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/ppep.cpp.o.d"
  "/root/repo/src/ppep/model/serialization.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/serialization.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/serialization.cpp.o.d"
  "/root/repo/src/ppep/model/thermal_estimator.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/thermal_estimator.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/thermal_estimator.cpp.o.d"
  "/root/repo/src/ppep/model/trainer.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/trainer.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/trainer.cpp.o.d"
  "/root/repo/src/ppep/model/validation.cpp" "src/ppep/model/CMakeFiles/ppep_model.dir/validation.cpp.o" "gcc" "src/ppep/model/CMakeFiles/ppep_model.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppep/math/CMakeFiles/ppep_math.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/sim/CMakeFiles/ppep_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/trace/CMakeFiles/ppep_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/workloads/CMakeFiles/ppep_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ppep/util/CMakeFiles/ppep_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
