file(REMOVE_RECURSE
  "CMakeFiles/ppep_model.dir/chip_power_model.cpp.o"
  "CMakeFiles/ppep_model.dir/chip_power_model.cpp.o.d"
  "CMakeFiles/ppep_model.dir/cpi_model.cpp.o"
  "CMakeFiles/ppep_model.dir/cpi_model.cpp.o.d"
  "CMakeFiles/ppep_model.dir/dynamic_power_model.cpp.o"
  "CMakeFiles/ppep_model.dir/dynamic_power_model.cpp.o.d"
  "CMakeFiles/ppep_model.dir/event_predictor.cpp.o"
  "CMakeFiles/ppep_model.dir/event_predictor.cpp.o.d"
  "CMakeFiles/ppep_model.dir/green_governors.cpp.o"
  "CMakeFiles/ppep_model.dir/green_governors.cpp.o.d"
  "CMakeFiles/ppep_model.dir/idle_power_model.cpp.o"
  "CMakeFiles/ppep_model.dir/idle_power_model.cpp.o.d"
  "CMakeFiles/ppep_model.dir/per_core_power.cpp.o"
  "CMakeFiles/ppep_model.dir/per_core_power.cpp.o.d"
  "CMakeFiles/ppep_model.dir/pg_idle_model.cpp.o"
  "CMakeFiles/ppep_model.dir/pg_idle_model.cpp.o.d"
  "CMakeFiles/ppep_model.dir/ppep.cpp.o"
  "CMakeFiles/ppep_model.dir/ppep.cpp.o.d"
  "CMakeFiles/ppep_model.dir/serialization.cpp.o"
  "CMakeFiles/ppep_model.dir/serialization.cpp.o.d"
  "CMakeFiles/ppep_model.dir/thermal_estimator.cpp.o"
  "CMakeFiles/ppep_model.dir/thermal_estimator.cpp.o.d"
  "CMakeFiles/ppep_model.dir/trainer.cpp.o"
  "CMakeFiles/ppep_model.dir/trainer.cpp.o.d"
  "CMakeFiles/ppep_model.dir/validation.cpp.o"
  "CMakeFiles/ppep_model.dir/validation.cpp.o.d"
  "libppep_model.a"
  "libppep_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
