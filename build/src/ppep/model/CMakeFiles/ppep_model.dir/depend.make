# Empty dependencies file for ppep_model.
# This may be replaced when dependencies are built.
