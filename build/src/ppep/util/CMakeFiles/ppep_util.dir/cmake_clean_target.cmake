file(REMOVE_RECURSE
  "libppep_util.a"
)
