# Empty dependencies file for ppep_util.
# This may be replaced when dependencies are built.
