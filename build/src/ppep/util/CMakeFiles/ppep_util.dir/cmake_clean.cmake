file(REMOVE_RECURSE
  "CMakeFiles/ppep_util.dir/csv.cpp.o"
  "CMakeFiles/ppep_util.dir/csv.cpp.o.d"
  "CMakeFiles/ppep_util.dir/logging.cpp.o"
  "CMakeFiles/ppep_util.dir/logging.cpp.o.d"
  "CMakeFiles/ppep_util.dir/rng.cpp.o"
  "CMakeFiles/ppep_util.dir/rng.cpp.o.d"
  "CMakeFiles/ppep_util.dir/stats.cpp.o"
  "CMakeFiles/ppep_util.dir/stats.cpp.o.d"
  "CMakeFiles/ppep_util.dir/table.cpp.o"
  "CMakeFiles/ppep_util.dir/table.cpp.o.d"
  "libppep_util.a"
  "libppep_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppep_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
