
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppep/util/csv.cpp" "src/ppep/util/CMakeFiles/ppep_util.dir/csv.cpp.o" "gcc" "src/ppep/util/CMakeFiles/ppep_util.dir/csv.cpp.o.d"
  "/root/repo/src/ppep/util/logging.cpp" "src/ppep/util/CMakeFiles/ppep_util.dir/logging.cpp.o" "gcc" "src/ppep/util/CMakeFiles/ppep_util.dir/logging.cpp.o.d"
  "/root/repo/src/ppep/util/rng.cpp" "src/ppep/util/CMakeFiles/ppep_util.dir/rng.cpp.o" "gcc" "src/ppep/util/CMakeFiles/ppep_util.dir/rng.cpp.o.d"
  "/root/repo/src/ppep/util/stats.cpp" "src/ppep/util/CMakeFiles/ppep_util.dir/stats.cpp.o" "gcc" "src/ppep/util/CMakeFiles/ppep_util.dir/stats.cpp.o.d"
  "/root/repo/src/ppep/util/table.cpp" "src/ppep/util/CMakeFiles/ppep_util.dir/table.cpp.o" "gcc" "src/ppep/util/CMakeFiles/ppep_util.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
