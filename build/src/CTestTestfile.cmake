# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("ppep/util")
subdirs("ppep/math")
subdirs("ppep/sim")
subdirs("ppep/workloads")
subdirs("ppep/trace")
subdirs("ppep/model")
subdirs("ppep/governor")
