file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_power_gating.dir/bench_fig4_power_gating.cpp.o"
  "CMakeFiles/bench_fig4_power_gating.dir/bench_fig4_power_gating.cpp.o.d"
  "bench_fig4_power_gating"
  "bench_fig4_power_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_power_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
