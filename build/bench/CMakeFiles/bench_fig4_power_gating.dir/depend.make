# Empty dependencies file for bench_fig4_power_gating.
# This may be replaced when dependencies are built.
