# Empty dependencies file for bench_fig11_nb_dvfs.
# This may be replaced when dependencies are built.
