file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_power_capping.dir/bench_fig7_power_capping.cpp.o"
  "CMakeFiles/bench_fig7_power_capping.dir/bench_fig7_power_capping.cpp.o.d"
  "bench_fig7_power_capping"
  "bench_fig7_power_capping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_power_capping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
