# Empty compiler generated dependencies file for bench_fig6_energy_prediction.
# This may be replaced when dependencies are built.
