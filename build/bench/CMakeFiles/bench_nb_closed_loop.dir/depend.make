# Empty dependencies file for bench_nb_closed_loop.
# This may be replaced when dependencies are built.
