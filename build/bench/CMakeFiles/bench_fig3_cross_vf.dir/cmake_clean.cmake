file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cross_vf.dir/bench_fig3_cross_vf.cpp.o"
  "CMakeFiles/bench_fig3_cross_vf.dir/bench_fig3_cross_vf.cpp.o.d"
  "bench_fig3_cross_vf"
  "bench_fig3_cross_vf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cross_vf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
