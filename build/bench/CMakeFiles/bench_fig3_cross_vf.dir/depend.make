# Empty dependencies file for bench_fig3_cross_vf.
# This may be replaced when dependencies are built.
