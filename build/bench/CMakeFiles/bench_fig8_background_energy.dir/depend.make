# Empty dependencies file for bench_fig8_background_energy.
# This may be replaced when dependencies are built.
