# Empty compiler generated dependencies file for bench_phenom_validation.
# This may be replaced when dependencies are built.
