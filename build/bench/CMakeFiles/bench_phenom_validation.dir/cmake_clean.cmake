file(REMOVE_RECURSE
  "CMakeFiles/bench_phenom_validation.dir/bench_phenom_validation.cpp.o"
  "CMakeFiles/bench_phenom_validation.dir/bench_phenom_validation.cpp.o.d"
  "bench_phenom_validation"
  "bench_phenom_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_phenom_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
