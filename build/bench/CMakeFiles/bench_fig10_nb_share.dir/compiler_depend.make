# Empty compiler generated dependencies file for bench_fig10_nb_share.
# This may be replaced when dependencies are built.
