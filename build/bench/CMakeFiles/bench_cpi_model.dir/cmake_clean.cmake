file(REMOVE_RECURSE
  "CMakeFiles/bench_cpi_model.dir/bench_cpi_model.cpp.o"
  "CMakeFiles/bench_cpi_model.dir/bench_cpi_model.cpp.o.d"
  "bench_cpi_model"
  "bench_cpi_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpi_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
