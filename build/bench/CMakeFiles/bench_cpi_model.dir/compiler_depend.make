# Empty compiler generated dependencies file for bench_cpi_model.
# This may be replaced when dependencies are built.
