# Empty dependencies file for bench_fig9_background_edp.
# This may be replaced when dependencies are built.
