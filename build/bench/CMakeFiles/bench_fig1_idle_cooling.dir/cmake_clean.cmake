file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_idle_cooling.dir/bench_fig1_idle_cooling.cpp.o"
  "CMakeFiles/bench_fig1_idle_cooling.dir/bench_fig1_idle_cooling.cpp.o.d"
  "bench_fig1_idle_cooling"
  "bench_fig1_idle_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_idle_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
