# Empty dependencies file for bench_fig1_idle_cooling.
# This may be replaced when dependencies are built.
