/**
 * @file
 * Differential tests for the batched VF×core exploration kernel: the
 * data-parallel exploreInto() path must be *bit-identical* to the
 * retained scalar reference (exploreScalarInto — the original per-VF
 * predictAt() loop) on every field of every prediction, over both real
 * simulated intervals and 10k randomized records covering the guard
 * paths (idle cores, saturated counters, NaN counts, corrupt
 * cycles/instruction ratios).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>

#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;
namespace wl = ppep::workloads;

struct SharedModels
{
    sim::ChipConfig cfg = sim::fx8320Config();
    TrainedModels models;

    SharedModels()
    {
        Trainer trainer(cfg, 21);
        std::vector<const wl::Combination *> training;
        for (const auto &c : wl::allCombinations()) {
            if (c.instances.size() == 1 && training.size() < 16)
                training.push_back(&c);
        }
        models = trainer.trainAll(training);
    }

    static const SharedModels &
    get()
    {
        static const SharedModels s;
        return s;
    }
};

std::uint64_t
bits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

/**
 * Bitwise equality, distinguishing -0.0 from +0.0 — except that any NaN
 * equals any NaN. The two paths agree deterministically on *which*
 * outputs are NaN, but a NaN's payload and sign come from IEEE
 * propagation rules that depend on instruction operand order (e.g.
 * `-nan + nan` returns whichever operand the codegen put first), which
 * no source-level contract can pin down.
 */
void
expectBitEqual(double a, double b, const char *what, std::size_t vf,
               std::size_t core = static_cast<std::size_t>(-1))
{
    if (std::isnan(a) && std::isnan(b))
        return;
    EXPECT_EQ(bits(a), bits(b))
        << what << " diverges at vf " << vf
        << (core == static_cast<std::size_t>(-1)
                ? std::string()
                : " core " + std::to_string(core))
        << ": batched " << a << " vs scalar " << b;
}

void
expectIdentical(const std::vector<VfPrediction> &batched,
                const std::vector<VfPrediction> &scalar)
{
    ASSERT_EQ(batched.size(), scalar.size());
    for (std::size_t vf = 0; vf < batched.size(); ++vf) {
        const VfPrediction &b = batched[vf];
        const VfPrediction &s = scalar[vf];
        EXPECT_EQ(b.vf_index, s.vf_index);
        expectBitEqual(b.chip_power_w, s.chip_power_w, "chip_power_w",
                       vf);
        expectBitEqual(b.idle_w, s.idle_w, "idle_w", vf);
        expectBitEqual(b.dynamic_w, s.dynamic_w, "dynamic_w", vf);
        expectBitEqual(b.total_ips, s.total_ips, "total_ips", vf);
        expectBitEqual(b.energy_per_inst, s.energy_per_inst,
                       "energy_per_inst", vf);
        expectBitEqual(b.edp_per_inst, s.edp_per_inst, "edp_per_inst",
                       vf);
        ASSERT_EQ(b.cores.size(), s.cores.size());
        for (std::size_t c = 0; c < b.cores.size(); ++c) {
            expectBitEqual(b.cores[c].cpi, s.cores[c].cpi, "cpi", vf,
                           c);
            expectBitEqual(b.cores[c].ips, s.cores[c].ips, "ips", vf,
                           c);
            expectBitEqual(b.cores[c].dynamic_w, s.cores[c].dynamic_w,
                           "core dynamic_w", vf, c);
            EXPECT_EQ(b.cores[c].busy, s.cores[c].busy);
        }
    }
}

void
expectPathsAgree(const Ppep &ppep, const ppep::trace::IntervalRecord &rec)
{
    ExploreScratch scratch_b, scratch_s;
    std::vector<VfPrediction> batched, scalar;
    ppep.exploreInto(rec, batched, scratch_b);
    ppep.exploreScalarInto(rec, scalar, scratch_s);
    expectIdentical(batched, scalar);
}

// --- golden: real simulated intervals ------------------------------------

ppep::trace::IntervalRecord
measure(const std::string &program, std::size_t copies, std::size_t vf)
{
    const auto &s = SharedModels::get();
    sim::Chip chip(s.cfg, 77);
    chip.setAllVf(vf);
    wl::launch(chip, wl::replicate(program, copies), true);
    ppep::trace::Collector col(chip);
    col.collect(3);
    return col.collectInterval();
}

TEST(ExploreKernel, BatchedMatchesScalarOnSimulatedIntervals)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    for (std::size_t vf = 0; vf < s.cfg.vf_table.size(); ++vf) {
        expectPathsAgree(ppep, measure("433.milc", 4, vf));
        expectPathsAgree(ppep, measure("458.sjeng", 8, vf));
    }
    expectPathsAgree(ppep, measure("470.lbm", 1, 2));
    // All-idle chip: every core takes the zero-prediction sentinel path.
    const auto &cfg = SharedModels::get().cfg;
    sim::Chip idle(cfg, 7);
    idle.setAllVf(3);
    ppep::trace::Collector col(idle);
    col.collect(2);
    expectPathsAgree(ppep, col.collectInterval());
}

TEST(ExploreKernel, PlanMirrorsVfTable)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const ExplorePlan &plan = ppep.plan();
    ASSERT_EQ(plan.size(), s.cfg.vf_table.size());
    for (std::size_t vf = 0; vf < plan.size(); ++vf) {
        EXPECT_EQ(plan.freq_ghz[vf], s.cfg.vf_table.state(vf).freq_ghz);
        EXPECT_EQ(plan.voltage[vf], s.cfg.vf_table.state(vf).voltage);
        EXPECT_GT(plan.vscale[vf], 0.0);
    }
}

// --- randomized differential ---------------------------------------------

/**
 * Random interval records spanning the kernel's guard space: busy and
 * idle cores, tiny and saturated counts, occasional NaN/huge poisons,
 * and corrupt cycles-vs-instructions ratios that push the predicted CPI
 * through zero or past DBL_MAX.
 */
ppep::trace::IntervalRecord
randomRecord(std::mt19937_64 &rng, const sim::ChipConfig &cfg)
{
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::uniform_int_distribution<std::size_t> vf_dist(
        0, cfg.vf_table.size() - 1);
    std::uniform_int_distribution<std::size_t> core_dist(0, 8);

    ppep::trace::IntervalRecord rec;
    rec.duration_s = unit(rng) < 0.05 ? 1e-9 : 0.2;
    rec.diode_temp_k = 280.0 + 80.0 * unit(rng);
    rec.cu_vf.assign(cfg.n_cus, 0);
    for (auto &v : rec.cu_vf)
        v = vf_dist(rng);
    rec.sensor_power_w = 100.0 * unit(rng);

    rec.pmc.resize(core_dist(rng));
    for (auto &core : rec.pmc) {
        core = sim::EventVector{};
        const double r = unit(rng);
        if (r < 0.15)
            continue; // idle core: all-zero counts
        // log-uniform magnitudes from near-zero to saturated
        auto count = [&] {
            const double mag = unit(rng);
            if (mag < 0.05)
                return 1e308; // saturated / wrapped counter
            if (mag < 0.10)
                return std::numeric_limits<double>::quiet_NaN();
            return std::pow(10.0, 14.0 * unit(rng)); // up to 1e14
        };
        for (std::size_t e = 0; e < core.size(); ++e)
            core[e] = count();
        // Corrupt ratio corner: instructions without cycles (and the
        // reverse) drive the CPI guard paths.
        if (r < 0.25)
            core[sim::eventIndex(sim::Event::ClocksNotHalted)] = 0.0;
        else if (r < 0.35)
            core[sim::eventIndex(sim::Event::RetiredInst)] = 0.0;
    }
    return rec;
}

TEST(ExploreKernel, BatchedMatchesScalarOn10kRandomRecords)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    std::mt19937_64 rng(2014);
    ExploreScratch scratch_b, scratch_s;
    std::vector<VfPrediction> batched, scalar;
    for (int i = 0; i < 10000; ++i) {
        const auto rec = randomRecord(rng, s.cfg);
        ppep.exploreInto(rec, batched, scratch_b);
        ppep.exploreScalarInto(rec, scalar, scratch_s);
        SCOPED_TRACE("record " + std::to_string(i));
        expectIdentical(batched, scalar);
        if (HasFailure())
            break; // one record's dump is enough
    }
}

TEST(ExploreKernel, ExploreIntoReusesScratchWithoutStaleState)
{
    // Alternating wildly different core counts through ONE scratch must
    // still match a fresh-scratch scalar run: the workspace resize is
    // grow-only, so stale cells from a wider record must never leak.
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    std::mt19937_64 rng(7);
    ExploreScratch reused;
    std::vector<VfPrediction> batched, scalar;
    for (int i = 0; i < 50; ++i) {
        const auto rec = randomRecord(rng, s.cfg);
        ppep.exploreInto(rec, batched, reused);
        ExploreScratch fresh;
        ppep.exploreScalarInto(rec, scalar, fresh);
        SCOPED_TRACE("record " + std::to_string(i));
        expectIdentical(batched, scalar);
    }
}

} // namespace
