/**
 * @file
 * Integration tests for the assembled chip simulator.
 */

#include <gtest/gtest.h>

#include "ppep/sim/chip.hpp"
#include "ppep/workloads/microbench.hpp"

namespace {

using namespace ppep::sim;

TEST(Chip, IdleChipDrawsStaticPowerOnly)
{
    Chip chip(fx8320Config(), 1);
    const auto r = chip.step();
    EXPECT_DOUBLE_EQ(r.truth.power.coreDynamicTotal(), 0.0);
    EXPECT_GT(r.truth.power.total, 15.0);
    EXPECT_GT(r.sensor_power_w, 10.0);
}

TEST(Chip, BusyCoreProducesEventsAndDynamicPower)
{
    Chip chip(fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    const auto r = chip.step();
    EXPECT_GT(r.truth.activity[0].instructions, 1e6);
    EXPECT_GT(r.truth.power.core_dynamic[0], 0.5);
    EXPECT_DOUBLE_EQ(r.truth.power.core_dynamic[1], 0.0);
}

TEST(Chip, DeterministicForSameSeed)
{
    const auto run = [](std::uint64_t seed) {
        Chip chip(fx8320Config(), seed);
        chip.setJob(0, ppep::workloads::makeHeater());
        std::vector<double> powers;
        for (int i = 0; i < 50; ++i)
            powers.push_back(chip.step().sensor_power_w);
        return powers;
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));
}

TEST(Chip, JobFinishesAndCoreGoesIdle)
{
    Chip chip(fx8320Config(), 1);
    Phase p;
    p.inst_count = 5e6; // far less than one tick of work
    chip.setJob(0, std::make_unique<Job>("tiny",
                                         std::vector<Phase>{p}));
    const auto r1 = chip.step();
    EXPECT_NEAR(r1.truth.activity[0].instructions, 5e6, 1.0);
    EXPECT_TRUE(chip.job(0)->finished());
    const auto r2 = chip.step();
    EXPECT_DOUBLE_EQ(r2.truth.activity[0].instructions, 0.0);
}

TEST(Chip, PowerGatingGatesIdleCus)
{
    auto cfg = fx8320Config();
    Chip chip(cfg, 1);
    chip.setPowerGatingEnabled(true);
    chip.setJob(0, ppep::workloads::makeBenchA()); // CU0 busy
    const auto r = chip.step();
    EXPECT_FALSE(r.truth.cu_gated[0]);
    EXPECT_TRUE(r.truth.cu_gated[1]);
    EXPECT_TRUE(r.truth.cu_gated[2]);
    EXPECT_TRUE(r.truth.cu_gated[3]);
    EXPECT_FALSE(r.truth.nb_gated); // a CU is alive
}

TEST(Chip, FullyIdleGatedChipGatesNb)
{
    Chip chip(fx8320Config(), 1);
    chip.setPowerGatingEnabled(true);
    const auto r = chip.step();
    EXPECT_TRUE(r.truth.nb_gated);
    // Only base power (+ residuals) remains.
    EXPECT_LT(r.truth.power.total, 10.0);
}

TEST(Chip, GatingReducesPower)
{
    Chip gated(fx8320Config(), 1), open(fx8320Config(), 1);
    gated.setPowerGatingEnabled(true);
    gated.setJob(0, ppep::workloads::makeBenchA());
    open.setJob(0, ppep::workloads::makeBenchA());
    double p_gated = 0.0, p_open = 0.0;
    for (int i = 0; i < 20; ++i) {
        p_gated += gated.step().truth.power.total;
        p_open += open.step().truth.power.total;
    }
    EXPECT_LT(p_gated, p_open - 20.0 * 5.0); // >=5 W apart on average
}

TEST(ChipDeath, PgUnsupportedRejected)
{
    Chip chip(phenomIIConfig(), 1);
    EXPECT_DEATH(chip.setPowerGatingEnabled(true),
                 "does not support power gating");
}

TEST(Chip, SharedRailUsesMaxVoltage)
{
    auto cfg = fx8320Config();
    ASSERT_FALSE(cfg.per_cu_voltage);
    Chip chip(cfg, 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    chip.setJob(2, ppep::workloads::makeBenchA());
    chip.setCuVf(0, 0); // CU0 slow
    chip.setCuVf(1, 4); // CU1 fast
    // Both CUs see the highest requested voltage on the shared rail.
    EXPECT_DOUBLE_EQ(chip.effectiveCuVoltage(0),
                     cfg.vf_table.state(4).voltage);
    EXPECT_DOUBLE_EQ(chip.effectiveCuVoltage(1),
                     cfg.vf_table.state(4).voltage);
}

TEST(Chip, PerCuVoltagePlanesIndependent)
{
    auto cfg = fx8320Config();
    cfg.per_cu_voltage = true;
    Chip chip(cfg, 1);
    chip.setCuVf(0, 0);
    chip.setCuVf(1, 4);
    EXPECT_DOUBLE_EQ(chip.effectiveCuVoltage(0),
                     cfg.vf_table.state(0).voltage);
    EXPECT_DOUBLE_EQ(chip.effectiveCuVoltage(1),
                     cfg.vf_table.state(4).voltage);
}

TEST(Chip, LowerVfLowersPowerAndThroughput)
{
    const auto run_at = [](std::size_t vf) {
        Chip chip(fx8320Config(), 1);
        chip.setAllVf(vf);
        for (std::size_t c = 0; c < 8; ++c)
            chip.setJob(c, ppep::workloads::makeHeater());
        double power = 0.0, inst = 0.0;
        for (int i = 0; i < 25; ++i) {
            const auto r = chip.step();
            power += r.truth.power.total;
            for (const auto &a : r.truth.activity)
                inst += a.instructions;
        }
        return std::pair{power, inst};
    };
    const auto [p_hi, i_hi] = run_at(4);
    const auto [p_lo, i_lo] = run_at(0);
    EXPECT_GT(p_hi, 1.8 * p_lo);
    EXPECT_GT(i_hi, 2.0 * i_lo);
}

TEST(Chip, TemperatureRisesUnderLoad)
{
    Chip chip(fx8320Config(), 1);
    const double start = chip.temperatureK();
    for (std::size_t c = 0; c < 8; ++c)
        chip.setJob(c, ppep::workloads::makeHeater());
    chip.run(500); // 10 s
    EXPECT_GT(chip.temperatureK(), start + 5.0);
}

TEST(Chip, PmcReadMatchesOracleForSteadyLoad)
{
    Chip chip(fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    EventVector oracle{};
    for (int t = 0; t < 10; ++t) {
        const auto r = chip.step();
        for (std::size_t e = 0; e < kNumEvents; ++e)
            oracle[e] += r.truth.core_events[0][e];
    }
    const auto pmc = chip.readPmc(0);
    for (std::size_t e = 0; e < kNumEvents; ++e) {
        if (oracle[e] == 0.0) {
            EXPECT_DOUBLE_EQ(pmc[e], 0.0);
        } else {
            // bench_A is steady: extrapolation error stays small.
            EXPECT_NEAR(pmc[e] / oracle[e], 1.0, 0.05) << "event " << e;
        }
    }
}

TEST(Chip, TimeAdvances)
{
    Chip chip(fx8320Config(), 1);
    chip.run(10);
    EXPECT_NEAR(chip.timeS(), 0.2, 1e-12);
}

TEST(Chip, MemoryBoundJobSlowerThanCpuBound)
{
    const auto ips_of = [](bool memory_bound) {
        Chip chip(fx8320Config(), 1);
        Phase p;
        if (memory_bound) {
            p.l2req_per_inst = 0.06;
            p.l2miss_per_inst = 0.025;
            p.leading_per_inst = 0.007;
            p.l3_miss_rate = 0.8;
        }
        chip.setJob(0, std::make_unique<Job>(
                           memory_bound ? "mem" : "cpu",
                           std::vector<Phase>{p}, true));
        double inst = 0.0;
        for (int i = 0; i < 20; ++i)
            inst += chip.step().truth.activity[0].instructions;
        return inst;
    };
    EXPECT_GT(ips_of(false), 1.5 * ips_of(true));
}

} // namespace
