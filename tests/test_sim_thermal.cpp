/**
 * @file
 * Unit tests for the RC thermal model (Fig. 1's heat/cool transients).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/sim/thermal_model.hpp"

namespace {

using namespace ppep::sim;

ThermalConfig
cfg()
{
    return ThermalConfig{};
}

TEST(Thermal, StartsAtAmbient)
{
    ThermalModel t(cfg());
    EXPECT_DOUBLE_EQ(t.temperature(), cfg().ambient_k);
}

TEST(Thermal, SteadyStateFormula)
{
    ThermalModel t(cfg());
    EXPECT_DOUBLE_EQ(t.steadyState(100.0),
                     cfg().ambient_k + cfg().resistance_k_per_w * 100.0);
    EXPECT_DOUBLE_EQ(t.steadyState(0.0), cfg().ambient_k);
}

TEST(Thermal, ApproachesSteadyStateMonotonically)
{
    ThermalModel t(cfg());
    const double target = t.steadyState(100.0);
    double prev = t.temperature();
    for (int i = 0; i < 1000; ++i) {
        t.step(100.0, 0.2);
        EXPECT_GE(t.temperature(), prev - 1e-12);
        EXPECT_LE(t.temperature(), target + 1e-9);
        prev = t.temperature();
    }
    EXPECT_NEAR(t.temperature(), target, 0.5);
}

TEST(Thermal, ExactExponentialDecay)
{
    ThermalModel t(cfg());
    t.setTemperature(340.0);
    const double t_ss = t.steadyState(0.0);
    const double dt = 10.0;
    t.step(0.0, dt);
    const double expected =
        t_ss + (340.0 - t_ss) * std::exp(-dt / cfg().time_constant_s);
    EXPECT_NEAR(t.temperature(), expected, 1e-9);
}

TEST(Thermal, StepSizeInvariance)
{
    // One 10 s step must equal ten 1 s steps (exact update, not Euler).
    ThermalModel a(cfg()), b(cfg());
    a.setTemperature(330.0);
    b.setTemperature(330.0);
    a.step(80.0, 10.0);
    for (int i = 0; i < 10; ++i)
        b.step(80.0, 1.0);
    EXPECT_NEAR(a.temperature(), b.temperature(), 1e-9);
}

TEST(Thermal, CoolingAfterHeating)
{
    ThermalModel t(cfg());
    for (int i = 0; i < 2000; ++i)
        t.step(120.0, 0.2);
    const double hot = t.temperature();
    for (int i = 0; i < 2000; ++i)
        t.step(35.0, 0.2);
    EXPECT_LT(t.temperature(), hot);
    EXPECT_NEAR(t.temperature(), t.steadyState(35.0), 0.5);
}

TEST(Thermal, DiodeQuantised)
{
    ThermalModel t(cfg());
    t.setTemperature(320.0701);
    const double reading = t.diodeReading();
    const double q = cfg().diode_quantum_k;
    EXPECT_NEAR(std::remainder(reading, q), 0.0, 1e-9);
    EXPECT_NEAR(reading, 320.0701, q);
}

TEST(Thermal, SetTemperatureOverrides)
{
    ThermalModel t(cfg());
    t.setTemperature(400.0);
    EXPECT_DOUBLE_EQ(t.temperature(), 400.0);
}

TEST(ThermalDeath, RejectsNegativePower)
{
    ThermalModel t(cfg());
    EXPECT_DEATH(t.step(-1.0, 0.2), "negative power");
}

TEST(ThermalDeath, RejectsZeroStep)
{
    ThermalModel t(cfg());
    EXPECT_DEATH(t.step(10.0, 0.0), "thermal step");
}

// Property sweep: the half-life of the decay matches the configured time
// constant for any starting offset.
class DecaySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(DecaySweep, TimeConstantRespected)
{
    ThermalModel t(cfg());
    const double start = cfg().ambient_k + GetParam();
    t.setTemperature(start);
    t.step(0.0, cfg().time_constant_s); // exactly one tau
    const double expected =
        cfg().ambient_k + GetParam() * std::exp(-1.0);
    EXPECT_NEAR(t.temperature(), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Offsets, DecaySweep,
                         ::testing::Values(5.0, 10.0, 20.0, 40.0));

} // namespace
