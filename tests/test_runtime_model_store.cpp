/**
 * @file
 * Tests for the content-addressed model cache: keys must change with
 * anything that changes the training outcome, cache round trips must be
 * prediction-exact, and the cold/warm lifecycle must behave.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "ppep/model/ppep.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::ModelKey;
using runtime::ModelStore;

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

std::string
freshCacheDir(const std::string &tag)
{
    const std::string dir =
        ::testing::TempDir() + "ppep_store_" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ModelKey, ChangesWithSeed)
{
    const auto cfg = sim::fx8320Config();
    const auto combos = smallTrainingSet();
    const auto a = ModelStore::keyFor(cfg, 1, combos);
    const auto b = ModelStore::keyFor(cfg, 2, combos);
    EXPECT_NE(a.digest(), b.digest());
    EXPECT_NE(a.fileName(), b.fileName());
}

TEST(ModelKey, ChangesWithPlatform)
{
    const auto combos = smallTrainingSet();
    const auto fx = ModelStore::keyFor(sim::fx8320Config(), 1, combos);
    const auto phenom =
        ModelStore::keyFor(sim::phenomIIConfig(), 1, combos);
    EXPECT_NE(fx.digest(), phenom.digest());

    // A visible config tweak on the same platform name must also miss:
    // per-CU voltage planes change what training measures.
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;
    const auto planes = ModelStore::keyFor(cfg, 1, combos);
    EXPECT_NE(fx.digest(), planes.digest());
    EXPECT_NE(fx.fingerprint, planes.fingerprint);
}

TEST(ModelKey, DistinctEntriesPerFleetConfig)
{
    // Every platform a heterogeneous fleet can mix must land on its
    // own cache entry — an FX-8320 model must never be served to a
    // Phenom II (or NB-DVFS-variant) session.
    const auto combos = smallTrainingSet();
    const sim::ChipConfig cfgs[] = {
        sim::fx8320Config(),
        sim::fx8320ConfigWithBoost(),
        sim::fx8320NbDvfsConfig(),
        sim::phenomIIConfig(),
    };
    for (std::size_t a = 0; a < std::size(cfgs); ++a)
        for (std::size_t b = a + 1; b < std::size(cfgs); ++b)
            EXPECT_NE(ModelStore::keyFor(cfgs[a], 1, combos).digest(),
                      ModelStore::keyFor(cfgs[b], 1, combos).digest())
                << cfgs[a].name << " vs " << cfgs[b].name;
}

TEST(ModelKey, ChangesWithGroundTruthPower)
{
    // The fingerprint covers the full chip description, ground truth
    // included: a recalibrated simulator must retrain rather than be
    // served models fit against the old power surface.
    const auto combos = smallTrainingSet();
    const auto base =
        ModelStore::keyFor(sim::fx8320Config(), 1, combos);

    auto cfg = sim::fx8320Config();
    cfg.power.base_power_w += 0.5;
    EXPECT_NE(base.fingerprint,
              ModelStore::keyFor(cfg, 1, combos).fingerprint);

    cfg = sim::fx8320Config();
    cfg.nb_dvfs_capable = true;
    EXPECT_NE(base.fingerprint,
              ModelStore::keyFor(cfg, 1, combos).fingerprint);
}

TEST(ModelKey, ChangesWithTrainingSet)
{
    const auto cfg = sim::fx8320Config();
    const auto a = ModelStore::keyFor(cfg, 1, smallTrainingSet(8));
    const auto b = ModelStore::keyFor(cfg, 1, smallTrainingSet(9));
    EXPECT_NE(a.digest(), b.digest());
    EXPECT_NE(a.combo_digest, b.combo_digest);
}

TEST(ModelKey, StableForIdenticalRequests)
{
    const auto cfg = sim::fx8320Config();
    const auto a = ModelStore::keyFor(cfg, 7, smallTrainingSet());
    const auto b = ModelStore::keyFor(cfg, 7, smallTrainingSet());
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.fileName(), b.fileName());
}

TEST(ModelKey, FileNameIsSlugged)
{
    const auto key =
        ModelStore::keyFor(sim::fx8320Config(), 1, smallTrainingSet());
    // "AMD FX-8320 (simulated)" -> lower-case slug, no spaces/parens.
    EXPECT_EQ(key.fileName().find("amd-fx-8320-simulated-"), 0u);
    EXPECT_NE(key.fileName().find(".ppepm"), std::string::npos);
}

TEST(ModelStore, DefaultCacheDirHonoursEnv)
{
    ::setenv("PPEP_CACHE_DIR", "/tmp/ppep-env-cache", 1);
    EXPECT_EQ(ModelStore::defaultCacheDir(), "/tmp/ppep-env-cache");
    ::unsetenv("PPEP_CACHE_DIR");
    EXPECT_EQ(ModelStore::defaultCacheDir(), ".ppep-cache");
}

TEST(ModelStore, TrainOrLoadLifecycle)
{
    const auto cfg = sim::fx8320Config();
    const auto combos = smallTrainingSet();
    const ModelStore store(freshCacheDir("lifecycle"));
    const auto key = ModelStore::keyFor(cfg, 33, combos);
    EXPECT_FALSE(store.contains(key));

    bool cached = true;
    const auto trained = store.trainOrLoad(cfg, 33, combos, &cached);
    EXPECT_FALSE(cached);
    EXPECT_TRUE(store.contains(key));

    bool cached2 = false;
    const auto loaded = store.trainOrLoad(cfg, 33, combos, &cached2);
    EXPECT_TRUE(cached2);

    // The warm-cache copy must predict bit-identically to the freshly
    // trained one — the property that makes cached daemon runs replay
    // the cold run's decision trace exactly.
    sim::Chip chip(cfg, 5);
    workloads::launch(chip, workloads::replicate("433.milc", 2), true);
    trace::Collector col(chip);
    col.collect(2);
    const auto rec = col.collectInterval();

    const model::Ppep ppep_a(cfg, trained.chip, trained.pg);
    const model::Ppep ppep_b(cfg, loaded.chip, loaded.pg);
    const auto pa = ppep_a.explore(rec);
    const auto pb = ppep_b.explore(rec);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t vf = 0; vf < pa.size(); ++vf) {
        EXPECT_DOUBLE_EQ(pa[vf].chip_power_w, pb[vf].chip_power_w);
        EXPECT_DOUBLE_EQ(pa[vf].total_ips, pb[vf].total_ips);
        EXPECT_DOUBLE_EQ(pa[vf].energy_per_inst, pb[vf].energy_per_inst);
        EXPECT_DOUBLE_EQ(pa[vf].edp_per_inst, pb[vf].edp_per_inst);
    }
    EXPECT_DOUBLE_EQ(loaded.alpha, trained.alpha);
}

TEST(ModelStore, DifferentSeedMissesCache)
{
    const auto cfg = sim::fx8320Config();
    const auto combos = smallTrainingSet();
    const ModelStore store(freshCacheDir("seed_miss"));

    bool cached = true;
    (void)store.trainOrLoad(cfg, 33, combos, &cached);
    EXPECT_FALSE(cached);

    // Same platform, same combos, different seed: must retrain.
    bool cached2 = true;
    (void)store.trainOrLoad(cfg, 34, combos, &cached2);
    EXPECT_FALSE(cached2);
    EXPECT_TRUE(store.contains(ModelStore::keyFor(cfg, 33, combos)));
    EXPECT_TRUE(store.contains(ModelStore::keyFor(cfg, 34, combos)));
}

TEST(ModelStore, ConcurrentTrainOrLoadTrainsOnce)
{
    const auto cfg = sim::fx8320Config();
    const auto combos = smallTrainingSet();
    const ModelStore store(freshCacheDir("concurrent"));

    const auto events_before = ModelStore::trainEvents();
    constexpr std::size_t kThreads = 4;
    std::vector<model::TrainedModels> results(kThreads);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            results[t] = store.trainOrLoad(cfg, 77, combos);
        });
    for (auto &th : pool)
        th.join();

    // All racers asked for the same key: exactly one may pay for
    // training; the rest must be served the identical artifact.
    EXPECT_EQ(ModelStore::trainEvents() - events_before, 1u);
    EXPECT_TRUE(store.contains(ModelStore::keyFor(cfg, 77, combos)));

    sim::Chip chip(cfg, 5);
    workloads::launch(chip, workloads::replicate("433.milc", 2), true);
    trace::Collector col(chip);
    col.collect(2);
    const auto rec = col.collectInterval();

    const model::Ppep ref(cfg, results[0].chip, results[0].pg);
    const auto pr = ref.explore(rec);
    for (std::size_t t = 1; t < kThreads; ++t) {
        EXPECT_DOUBLE_EQ(results[t].alpha, results[0].alpha);
        const model::Ppep ppep(cfg, results[t].chip, results[t].pg);
        const auto pt = ppep.explore(rec);
        ASSERT_EQ(pt.size(), pr.size());
        for (std::size_t vf = 0; vf < pt.size(); ++vf) {
            EXPECT_DOUBLE_EQ(pt[vf].chip_power_w, pr[vf].chip_power_w);
            EXPECT_DOUBLE_EQ(pt[vf].energy_per_inst,
                             pr[vf].energy_per_inst);
        }
    }
}

TEST(ModelStore, ConcurrentMixedFleetTrainsEachConfigOnce)
{
    // A heterogeneous fleet's prepare() path: racing trainOrLoad calls
    // for three distinct platforms must pay for exactly one training
    // per platform, and every racer of a platform must be served the
    // bit-identical artifact.
    const auto combos = smallTrainingSet();
    const ModelStore store(freshCacheDir("mixed_concurrent"));
    const sim::ChipConfig cfgs[] = {
        sim::fx8320Config(),
        sim::fx8320NbDvfsConfig(),
        sim::phenomIIConfig(),
    };

    const auto events_before = ModelStore::trainEvents();
    constexpr std::size_t kThreads = 6; // two racers per platform
    std::vector<model::TrainedModels> results(kThreads);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            results[t] =
                store.trainOrLoad(cfgs[t % std::size(cfgs)], 91, combos);
        });
    for (auto &th : pool)
        th.join();

    EXPECT_EQ(ModelStore::trainEvents() - events_before,
              std::size(cfgs));
    for (const auto &cfg : cfgs)
        EXPECT_TRUE(store.contains(ModelStore::keyFor(cfg, 91, combos)))
            << cfg.name;

    // Racers that asked for the same platform got the same models;
    // racers of different platforms did not.
    for (std::size_t c = 0; c < std::size(cfgs); ++c) {
        EXPECT_DOUBLE_EQ(results[c].alpha,
                         results[c + std::size(cfgs)].alpha);
        EXPECT_EQ(results[c].dynamic.weights(),
                  results[c + std::size(cfgs)].dynamic.weights());
    }
    EXPECT_NE(results[0].dynamic.weights(),
              results[2].dynamic.weights()); // FX vs Phenom
}

TEST(ModelStore, PathLockRegistryStaysBounded)
{
    const std::size_t cap = ModelStore::pathLockCapacity();
    ASSERT_GT(cap, 0u);

    // Touch far more distinct lock paths than the cap: every store's
    // lineage journal locks its own path, and nobody holds a handle
    // between calls, so idle entries must be evicted down to the cap.
    for (std::size_t i = 0; i < cap * 3; ++i) {
        const ModelStore store(
            freshCacheDir("lockreg_" + std::to_string(i)));
        (void)store.lineageLines();
    }
    EXPECT_LE(ModelStore::pathLockCount(), cap);
    EXPECT_GE(ModelStore::pathLockCount(), 1u);

    // Bounding must not sacrifice per-path exclusion: concurrent
    // appends to one journal still serialise and lose no lines.
    const ModelStore store(freshCacheDir("lockreg_exclusion"));
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kAppends = 8;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t)
        pool.emplace_back([&store, t] {
            for (std::size_t i = 0; i < kAppends; ++i)
                store.appendLineage("platform", 1,
                                    t * kAppends + i, 0, 1, "test", i,
                                    0.5, 1.0);
        });
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(store.lineageLines().size(), kThreads * kAppends);
}

TEST(ModelStore, Fnv1aMatchesReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(runtime::fnv1a("", 0), 14695981039346656037ull);
    EXPECT_EQ(runtime::fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(runtime::fnv1a("foobar", 6), 0x85944171f73967e8ull);
}

} // namespace
