/**
 * @file
 * Unit tests for k-fold splitting (the paper's 4-fold cross validation).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ppep/math/kfold.hpp"

namespace {

using ppep::math::makeFolds;

TEST(Kfold, EveryItemTestedExactlyOnce)
{
    ppep::util::Rng rng(1);
    const auto folds = makeFolds(152, 4, rng);
    std::set<std::size_t> tested;
    for (const auto &f : folds)
        for (std::size_t idx : f.test)
            EXPECT_TRUE(tested.insert(idx).second)
                << "item " << idx << " tested twice";
    EXPECT_EQ(tested.size(), 152u);
}

TEST(Kfold, TrainAndTestDisjointAndComplete)
{
    ppep::util::Rng rng(2);
    const auto folds = makeFolds(100, 4, rng);
    for (const auto &f : folds) {
        std::set<std::size_t> train(f.train.begin(), f.train.end());
        for (std::size_t idx : f.test)
            EXPECT_EQ(train.count(idx), 0u);
        EXPECT_EQ(train.size() + f.test.size(), 100u);
    }
}

TEST(Kfold, NearEqualSizes)
{
    ppep::util::Rng rng(3);
    const auto folds = makeFolds(152, 4, rng);
    for (const auto &f : folds)
        EXPECT_EQ(f.test.size(), 38u); // 152 / 4 exactly
}

TEST(Kfold, UnevenSizesDifferByAtMostOne)
{
    ppep::util::Rng rng(4);
    const auto folds = makeFolds(10, 3, rng);
    std::size_t lo = 100, hi = 0;
    for (const auto &f : folds) {
        lo = std::min(lo, f.test.size());
        hi = std::max(hi, f.test.size());
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST(Kfold, DeterministicForSameSeed)
{
    ppep::util::Rng a(5), b(5);
    const auto fa = makeFolds(50, 4, a);
    const auto fb = makeFolds(50, 4, b);
    for (std::size_t f = 0; f < 4; ++f)
        EXPECT_EQ(fa[f].test, fb[f].test);
}

TEST(Kfold, ShuffledNotIdentity)
{
    ppep::util::Rng rng(6);
    const auto folds = makeFolds(100, 4, rng);
    // Fold 0's test set should not simply be {0, 4, 8, ...} of a sorted
    // deal — the shuffle must actually mix items.
    std::vector<std::size_t> sorted = folds[0].test;
    std::sort(sorted.begin(), sorted.end());
    bool contiguous_prefix = true;
    for (std::size_t i = 0; i < sorted.size(); ++i)
        contiguous_prefix = contiguous_prefix && sorted[i] == i;
    EXPECT_FALSE(contiguous_prefix);
}

// Property sweep: fold invariants hold across k.
class KfoldSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KfoldSweep, PartitionInvariants)
{
    const std::size_t k = GetParam();
    ppep::util::Rng rng(7 + k);
    const std::size_t n = 152;
    const auto folds = makeFolds(n, k, rng);
    ASSERT_EQ(folds.size(), k);
    std::set<std::size_t> tested;
    for (const auto &f : folds) {
        EXPECT_EQ(f.train.size() + f.test.size(), n);
        for (std::size_t idx : f.test) {
            EXPECT_LT(idx, n);
            tested.insert(idx);
        }
    }
    EXPECT_EQ(tested.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Ks, KfoldSweep,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u));

} // namespace
