/**
 * @file
 * AsyncTelemetrySink unit tests, shutdown edges included: ordered
 * drain under backlog, deep-copy integrity once the callback's
 * pointers are gone, flush/finish as durability points, idempotent
 * close, and the two loud-failure edges the annotations document —
 * onInterval() after close() and a producer blocked across close().
 * Runs under the concurrency label so the TSan job exercises the
 * annotated invariants dynamically too.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "ppep/runtime/async_telemetry.hpp"
#include "ppep/runtime/telemetry.hpp"

namespace {

using namespace ppep;
using runtime::AsyncTelemetrySink;
using runtime::IntervalTelemetry;
using runtime::TelemetrySink;

/** Records what the writer thread hands it; optionally slow. The
 *  wrapped sink is touched only from the writer thread (plus drained
 *  finish/flush/close), so plain members suffice. */
class CountingSink : public TelemetrySink
{
  public:
    explicit CountingSink(std::chrono::microseconds delay = {})
        : delay_(delay)
    {
    }

    void onInterval(const IntervalTelemetry &t) override
    {
        if (delay_.count() > 0)
            std::this_thread::sleep_for(delay_);
        indices.push_back(t.index);
        sensor_w.push_back(t.rec->sensor_power_w);
        cu_vf0.push_back(t.cu_vf->empty() ? 0 : (*t.cu_vf)[0]);
    }
    void finish() override { ++finishes; }
    void flush() override { ++flushes; }
    void close() override { ++closes; }

    std::vector<std::size_t> indices;
    std::vector<double> sensor_w;
    std::vector<std::size_t> cu_vf0;
    int finishes = 0;
    int flushes = 0;
    int closes = 0;

  private:
    std::chrono::microseconds delay_;
};

/** Blocks inside onInterval() until released — pins the writer thread
 *  so a test can force the producer against a full ring. */
class GateSink : public TelemetrySink
{
  public:
    void onInterval(const IntervalTelemetry &) override
    {
        entered.store(true);
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    std::atomic<bool> entered{false};
    std::atomic<bool> release{false};
};

/** A minimal but pointer-complete telemetry row. The backing storage
 *  lives in the fixture so the sink's deep copy is what keeps the data
 *  alive — exactly the production contract. */
struct Row
{
    trace::IntervalRecord rec;
    std::vector<std::size_t> cu_vf;

    IntervalTelemetry telemetry(std::size_t index)
    {
        rec.duration_s = 0.2;
        rec.sensor_power_w = 10.0 + static_cast<double>(index);
        cu_vf = {index % 4, (index + 1) % 4};
        IntervalTelemetry t;
        t.index = index;
        t.time_s = 0.2 * static_cast<double>(index);
        t.rec = &rec;
        t.cu_vf = &cu_vf;
        return t;
    }
};

TEST(AsyncTelemetry, DrainsBacklogInOrderWithDeepCopies)
{
    CountingSink slow(std::chrono::microseconds(200));
    {
        AsyncTelemetrySink async(slow, 4);
        for (std::size_t i = 0; i < 64; ++i) {
            // One Row per iteration, dead before the writer gets there:
            // only the slot's deep copy can serve the values.
            Row row;
            async.onInterval(row.telemetry(i));
        }
        async.finish();
        EXPECT_EQ(slow.finishes, 1);
        EXPECT_EQ(slow.indices.size(), 64u);
        EXPECT_LE(async.maxDepth(), 4u);
        EXPECT_EQ(async.encodedIntervals(), 64u);
        EXPECT_GT(async.encodeSeconds(), 0.0);
    }
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(slow.indices[i], i);
        EXPECT_DOUBLE_EQ(slow.sensor_w[i], 10.0 + static_cast<double>(i));
        EXPECT_EQ(slow.cu_vf0[i], i % 4);
    }
}

TEST(AsyncTelemetry, DestructorDrainsAndCloses)
{
    CountingSink sink;
    {
        AsyncTelemetrySink async(sink, 8);
        Row row;
        for (std::size_t i = 0; i < 20; ++i)
            async.onInterval(row.telemetry(i));
        // No drain call: destruction alone must hand off all 20.
    }
    EXPECT_EQ(sink.indices.size(), 20u);
    EXPECT_EQ(sink.closes, 1);
}

TEST(AsyncTelemetry, FlushIsADurabilityPoint)
{
    CountingSink slow(std::chrono::microseconds(100));
    AsyncTelemetrySink async(slow, 4);
    Row row;
    for (std::size_t i = 0; i < 16; ++i)
        async.onInterval(row.telemetry(i));
    async.flush();
    // Everything enqueued before flush() is in the wrapped sink now.
    EXPECT_EQ(slow.indices.size(), 16u);
    EXPECT_EQ(slow.flushes, 1);
    async.close();
    EXPECT_EQ(slow.closes, 1);
}

TEST(AsyncTelemetry, CloseIsIdempotent)
{
    CountingSink sink;
    AsyncTelemetrySink async(sink, 4);
    Row row;
    async.onInterval(row.telemetry(0));
    async.close();
    async.close();
    EXPECT_EQ(sink.indices.size(), 1u);
    EXPECT_EQ(sink.closes, 1);
}

TEST(AsyncTelemetryDeath, OnIntervalAfterCloseDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    CountingSink sink;
    AsyncTelemetrySink async(sink, 4);
    async.close();
    Row row;
    EXPECT_DEATH(async.onInterval(row.telemetry(0)),
                 "onInterval\\(\\) after close\\(\\)");
}

TEST(AsyncTelemetryDeath, ProducerBlockedAcrossCloseDies)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            GateSink gate;
            AsyncTelemetrySink async(gate, 1);
            std::thread producer([&] {
                Row row;
                // #0 occupies the writer (gated), #1 fills the one
                // ring slot, #2 blocks on the full ring.
                for (std::size_t i = 0; i < 3; ++i)
                    async.onInterval(row.telemetry(i));
            });
            while (!gate.entered.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            // Give the producer time to reach the blocking wait.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
            async.close(); // wakes the blocked producer -> PPEP_FATAL
            producer.join();
        },
        "blocked in onInterval\\(\\) across close\\(\\)");
}

} // namespace
