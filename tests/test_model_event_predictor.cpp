/**
 * @file
 * Tests for the hardware event predictor, including simulator-level
 * validation of the paper's Observations 1 and 2 (Sec. IV-C).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/model/event_predictor.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;

sim::EventVector
busyInterval()
{
    // 0.2 s at 3.5 GHz, CPI 1.4, with plausible per-inst rates.
    sim::EventVector ev{};
    const double inst = 0.5e9;
    ev[sim::eventIndex(sim::Event::RetiredInst)] = inst;
    ev[sim::eventIndex(sim::Event::ClocksNotHalted)] = 0.7e9;
    ev[sim::eventIndex(sim::Event::MabWaitCycles)] = 0.2e9;
    ev[sim::eventIndex(sim::Event::DispatchStall)] = 0.32e9;
    ev[sim::eventIndex(sim::Event::RetiredUop)] = 1.3 * inst;
    ev[sim::eventIndex(sim::Event::FpuPipeAssignment)] = 0.2 * inst;
    ev[sim::eventIndex(sim::Event::InstCacheFetch)] = 0.25 * inst;
    ev[sim::eventIndex(sim::Event::DataCacheAccess)] = 0.4 * inst;
    ev[sim::eventIndex(sim::Event::RequestToL2)] = 0.03 * inst;
    ev[sim::eventIndex(sim::Event::RetiredBranch)] = 0.15 * inst;
    ev[sim::eventIndex(sim::Event::RetiredMispBranch)] = 0.004 * inst;
    ev[sim::eventIndex(sim::Event::L2CacheMiss)] = 0.012 * inst;
    return ev;
}

TEST(EventPredictor, IdleCorePredictsZero)
{
    const sim::EventVector ev{};
    const auto pred = EventPredictor::predict(ev, 0.2, 3.5, 1.4);
    EXPECT_DOUBLE_EQ(pred.ips, 0.0);
    for (double r : pred.rates_per_s)
        EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(EventPredictor, CorruptCountsPredictAsIdleNeverNan)
{
    // Wrapped, saturated, or failed read-outs reach the model as zero,
    // NaN, or absurd counts; every path must land on the defined idle
    // prediction (all-zero) rather than NaN/Inf rates.
    const double nan = std::nan("");
    auto zero_inst = busyInterval();
    zero_inst[sim::eventIndex(sim::Event::RetiredInst)] = 0.0;
    auto nan_inst = busyInterval();
    nan_inst[sim::eventIndex(sim::Event::RetiredInst)] = nan;
    auto nan_cycles = busyInterval();
    nan_cycles[sim::eventIndex(sim::Event::ClocksNotHalted)] = nan;
    auto no_cycles = busyInterval();
    no_cycles[sim::eventIndex(sim::Event::ClocksNotHalted)] = 0.0;

    for (const auto *ev :
         {&zero_inst, &nan_inst, &nan_cycles, &no_cycles}) {
        const auto pred = EventPredictor::predict(*ev, 0.2, 3.5, 1.4);
        EXPECT_DOUBLE_EQ(pred.ips, 0.0);
        EXPECT_DOUBLE_EQ(pred.cpi, 0.0);
        for (double r : pred.rates_per_s)
            EXPECT_DOUBLE_EQ(r, 0.0);
    }
}

TEST(EventPredictor, CorruptObservationsComeBackIdle)
{
    auto ev = busyInterval();
    ev[sim::eventIndex(sim::Event::ClocksNotHalted)] = std::nan("");
    const auto obs = EventPredictor::observe(ev, 0.2, 3.5);
    EXPECT_TRUE(obs.idle);
    EXPECT_DOUBLE_EQ(obs.f_current, 3.5);
    const auto pred = EventPredictor::predictAt(obs, 1.4);
    EXPECT_DOUBLE_EQ(pred.ips, 0.0);
    for (double r : pred.rates_per_s)
        EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(EventPredictor, Obs2GapDefinedForDegenerateCounts)
{
    sim::EventVector ev{};
    EXPECT_DOUBLE_EQ(EventPredictor::obs2Gap(ev), 0.0);
    ev[sim::eventIndex(sim::Event::RetiredInst)] = std::nan("");
    EXPECT_DOUBLE_EQ(EventPredictor::obs2Gap(ev), 0.0);
}

TEST(EventPredictor, SelfPredictionRecoversRates)
{
    const auto ev = busyInterval();
    const auto pred = EventPredictor::predict(ev, 0.2, 3.5, 3.5);
    for (std::size_t i = 0; i < sim::kNumEvents; ++i)
        EXPECT_NEAR(pred.rates_per_s[i], ev[i] / 0.2,
                    ev[i] / 0.2 * 1e-9 + 1e-9)
            << "event " << i;
}

TEST(EventPredictor, Obs2GapComputed)
{
    const auto ev = busyInterval();
    // CPI = 1.4, DS/inst = 0.64 -> gap = 0.76.
    EXPECT_NEAR(EventPredictor::obs2Gap(ev), 0.76, 1e-12);
}

TEST(EventPredictor, PerInstCountsPreservedAcrossVf)
{
    const auto ev = busyInterval();
    const auto pred = EventPredictor::predict(ev, 0.2, 3.5, 1.4);
    const double inst_now =
        ev[sim::eventIndex(sim::Event::RetiredInst)];
    const double ips_then = pred.rates_per_s[sim::eventIndex(
        sim::Event::RetiredInst)];
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(pred.rates_per_s[i] / ips_then, ev[i] / inst_now,
                    1e-12)
            << "event " << i;
    }
}

TEST(EventPredictor, DispatchStallsFollowObs2)
{
    const auto ev = busyInterval();
    const auto pred = EventPredictor::predict(ev, 0.2, 3.5, 1.4);
    const double ips = pred.rates_per_s[sim::eventIndex(
        sim::Event::RetiredInst)];
    const double ds_per_inst =
        pred.rates_per_s[sim::eventIndex(sim::Event::DispatchStall)] /
        ips;
    EXPECT_NEAR(pred.cpi - ds_per_inst, EventPredictor::obs2Gap(ev),
                1e-9);
}

TEST(EventPredictor, DownscaleReducesStallShare)
{
    // At lower frequency memory stalls shrink in cycle terms, so the
    // predicted CPI falls and throughput-per-hertz improves.
    const auto ev = busyInterval();
    const auto lo = EventPredictor::predict(ev, 0.2, 3.5, 1.4);
    const double cpi_now = 0.7e9 / 0.5e9;
    EXPECT_LT(lo.cpi, cpi_now);
    EXPECT_GT(lo.ips * 3.5 / 1.4, 0.5e9 / 0.2);
}

TEST(EventPredictor, McpiScaleStretchesMemoryTime)
{
    const auto ev = busyInterval();
    const auto plain = EventPredictor::predict(ev, 0.2, 3.5, 3.5, 1.0);
    const auto slow = EventPredictor::predict(ev, 0.2, 3.5, 3.5, 1.5);
    EXPECT_LT(slow.ips, plain.ips);
    // MCPI component grows exactly 1.5x.
    const double mab_plain = plain.rates_per_s[sim::eventIndex(
        sim::Event::MabWaitCycles)] / plain.rates_per_s[sim::eventIndex(
        sim::Event::RetiredInst)];
    const double mab_slow = slow.rates_per_s[sim::eventIndex(
        sim::Event::MabWaitCycles)] / slow.rates_per_s[sim::eventIndex(
        sim::Event::RetiredInst)];
    EXPECT_NEAR(mab_slow / mab_plain, 1.5, 1e-9);
}

TEST(EventPredictor, PartialBusyIntervalScalesRates)
{
    auto ev = busyInterval();
    // Halve the busy time: cycles say the core ran 0.1 s of 0.2 s.
    for (double &v : ev)
        v *= 0.5;
    const auto pred = EventPredictor::predict(ev, 0.2, 3.5, 3.5);
    // Effective rates are half the fully-busy rates.
    EXPECT_NEAR(pred.rates_per_s[sim::eventIndex(
                    sim::Event::RetiredInst)],
                0.5 * 0.5e9 / 0.2, 1e3);
}

/**
 * Simulator-level check of the paper's observation magnitudes: measure
 * per-instruction counts of E1..E8 and the Obs. 2 gap at VF5 and VF2 on
 * real profiles; deltas should match the paper's scale (<= ~5% for
 * events, ~2% for the gap).
 */
class ObservationSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    /** Per-inst event vector + obs2 gap, averaged over a short run. */
    std::pair<std::array<double, 8>, double>
    measureAt(std::size_t vf)
    {
        sim::Chip chip(sim::fx8320Config(), 7);
        chip.setAllVf(vf);
        chip.setJob(0, ppep::workloads::Suite::byName(GetParam())
                           .makeLoopingJob());
        ppep::trace::Collector col(chip);
        col.collect(2);
        const auto recs = col.collect(10);
        std::array<double, 8> per_inst{};
        double gap = 0.0;
        double inst = 0.0;
        for (const auto &r : recs) {
            inst += r.oracle[0][sim::eventIndex(
                sim::Event::RetiredInst)];
            for (std::size_t i = 0; i < 8; ++i)
                per_inst[i] += r.oracle[0][i];
            gap += EventPredictor::obs2Gap(r.oracle[0]);
        }
        for (auto &v : per_inst)
            v /= inst;
        gap /= static_cast<double>(recs.size());
        return {per_inst, gap};
    }
};

TEST_P(ObservationSweep, Observation1HoldsWithinPaperBand)
{
    const auto [hi, gap_hi] = measureAt(4);
    const auto [lo, gap_lo] = measureAt(1);
    (void)gap_hi;
    (void)gap_lo;
    for (std::size_t i = 0; i < 8; ++i) {
        if (hi[i] <= 1e-9)
            continue;
        const double delta = std::abs(hi[i] - lo[i]) / hi[i];
        EXPECT_LT(delta, 0.09) << GetParam() << " event E" << i + 1;
    }
}

TEST_P(ObservationSweep, Observation2HoldsWithinPaperBand)
{
    const auto [hi, gap_hi] = measureAt(4);
    const auto [lo, gap_lo] = measureAt(1);
    (void)hi;
    (void)lo;
    EXPECT_NEAR(gap_lo / gap_hi, 1.0, 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, ObservationSweep,
                         ::testing::Values("433.milc", "458.sjeng",
                                           "470.lbm", "blackscholes"));

} // namespace
