/**
 * @file
 * Tests for drift-triggered online recalibration: policy validation,
 * the trigger/refit/adopt lifecycle on a governed session, the
 * acceptance gate's rejection path, lineage journalling through the
 * ModelStore, and the fleet determinism contract across thread counts
 * with refits in flight.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>

#include "ppep/runtime/fleet.hpp"
#include "ppep/runtime/recalibrate.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::RecalibrationPolicy;
using runtime::Recalibrator;
using runtime::Session;

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

/** Pid-keyed cache dir: train once per test process, load thereafter. */
const std::string &
cacheDir()
{
    static const std::string dir = [] {
        const std::string d = ::testing::TempDir() +
                              "ppep_recal_cache_" +
                              std::to_string(::getpid());
        std::filesystem::remove_all(d);
        return d;
    }();
    return dir;
}

/** A refit-friendly policy: small ring, short latency, quick cooldown. */
RecalibrationPolicy
tightPolicy()
{
    RecalibrationPolicy p;
    p.recal_divergence_w = 6.0;
    p.ring_capacity = 64;
    p.min_ring_fill = 32;
    p.cooldown_intervals = 16;
    p.adopt_latency_intervals = 4;
    p.min_improvement = 0.05;
    return p;
}

sim::FaultPlan
driftPlan(double bias, double clamp = 0.4)
{
    sim::FaultPlan plan;
    plan.power_drift_bias = bias;
    plan.drift_clamp = clamp;
    return plan;
}

Session
driftingSession(const RecalibrationPolicy &pol,
                const sim::FaultPlan &plan, std::uint64_t seed = 5)
{
    return Session::builder(sim::fx8320Config())
        .seed(seed)
        .trainingSeed(91)
        .trainingCombos(smallTrainingSet())
        .store(runtime::ModelStore(cacheDir()))
        .onePerCu({"EP", "CG", "458.sjeng", "EP"})
        .faults(plan)
        .recalibration(pol)
        .build();
}

// --- policy validation --------------------------------------------------

TEST(RecalibratorDeath, DegeneratePoliciesAreFatal)
{
    const sim::ChipConfig cfg = sim::fx8320Config();
    const model::TrainedModels untrained;
    const runtime::GovernorRebuilder rebuild =
        [](const sim::ChipConfig &, const model::TrainedModels &,
           const model::Ppep &) {
            return std::unique_ptr<governor::Governor>();
        };

    RecalibrationPolicy k1;
    k1.kfold_k = 1;
    EXPECT_DEATH(Recalibrator(cfg, untrained, rebuild, 1, k1),
                 "k >= 2");

    RecalibrationPolicy shallow;
    shallow.ring_capacity = 8;
    shallow.min_ring_fill = 16;
    EXPECT_DEATH(Recalibrator(cfg, untrained, rebuild, 1, shallow),
                 "ring capacity");

    RecalibrationPolicy instant;
    instant.adopt_latency_intervals = 0;
    EXPECT_DEATH(Recalibrator(cfg, untrained, rebuild, 1, instant),
                 "latency");

    RecalibrationPolicy zero;
    zero.recal_divergence_w = 0.0;
    EXPECT_DEATH(Recalibrator(cfg, untrained, rebuild, 1, zero),
                 "threshold");

    RecalibrationPolicy greedy;
    greedy.min_improvement = 1.0;
    EXPECT_DEATH(Recalibrator(cfg, untrained, rebuild, 1, greedy),
                 "min_improvement");
}

// --- session lifecycle --------------------------------------------------

TEST(Recalibrate, PlainHardenedSessionNeverTriggers)
{
    // An accurate model on healthy hardware: the EWMA stays far below
    // the trigger threshold, so the recalibrator must stay idle.
    auto session =
        driftingSession(tightPolicy(), sim::FaultPlan{} /* no faults */);
    session.drive(60);
    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    EXPECT_EQ(rc->triggers(), 0u);
    EXPECT_EQ(rc->generation(), 0u);
    EXPECT_EQ(rc->current(), nullptr);
    EXPECT_FALSE(rc->refitPending());
    EXPECT_GT(rc->ringFill(), 0u);
}

TEST(Recalibrate, DriftTriggersRefitAndHotSwap)
{
    auto session = driftingSession(tightPolicy(), driftPlan(5e-4));
    session.drive(300);
    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    EXPECT_GE(rc->triggers(), 1u);
    EXPECT_GE(rc->accepted(), 1u);
    EXPECT_GE(rc->generation(), 1u);
    ASSERT_NE(rc->current(), nullptr);
    EXPECT_EQ(rc->current()->generation, rc->generation());

    // The swap restarted divergence tracking and the refit model fits
    // the drifted chip: the EWMA must be back under the clean line.
    const auto *mon = session.healthMonitor();
    ASSERT_NE(mon, nullptr);
    EXPECT_GE(mon->modelSwaps(), 1u);
    EXPECT_LT(mon->divergenceEwma(), mon->policy().clean_divergence_w);
    EXPECT_FALSE(mon->degraded());
}

TEST(Recalibrate, LineageChainsParentDigests)
{
    auto session = driftingSession(tightPolicy(), driftPlan(5e-4));
    session.drive(300);
    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    ASSERT_GE(rc->lineage().size(), 1u);
    std::uint64_t expected_gen = 0;
    std::uint64_t parent = rc->lineage().front().parent_digest;
    for (const auto &rec : rc->lineage()) {
        EXPECT_EQ(rec.parent_digest, parent);
        EXPECT_GT(rec.ring_rows, 0u);
        EXPECT_GT(rec.trigger_ewma_w, 0.0);
        EXPECT_GE(rec.decide_interval, rec.trigger_interval);
        if (rec.accepted) {
            EXPECT_STREQ(rec.verdict, "adopted");
            EXPECT_EQ(rec.generation, expected_gen + 1);
            ++expected_gen;
            parent = rec.digest; // the chain advances only on adoption
        } else {
            EXPECT_NE(rec.verdict[0], '\0');
        }
    }
    EXPECT_EQ(expected_gen, rc->generation());
}

TEST(Recalibrate, MaxGenerationsCapsAdoption)
{
    RecalibrationPolicy pol = tightPolicy();
    pol.max_generations = 1;
    auto session = driftingSession(pol, driftPlan(5e-4));
    session.drive(300);
    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    EXPECT_LE(rc->accepted(), 1u);
    EXPECT_LE(rc->generation(), 1u);
}

TEST(Recalibrate, UnbeatableIncumbentIsRejected)
{
    // No drift: the offline model is already the best linear fit of
    // this chip. A trigger forced by a microscopic threshold plus an
    // impossible improvement requirement must take the rejection path
    // and leave generation 0 governing.
    RecalibrationPolicy pol;
    pol.recal_divergence_w = 0.05;
    pol.ring_capacity = 16;
    pol.min_ring_fill = 8;
    pol.kfold_k = 2;
    pol.adopt_latency_intervals = 2;
    pol.cooldown_intervals = 100000;
    pol.min_improvement = 0.9;
    auto session = driftingSession(pol, sim::FaultPlan{});
    session.drive(60);
    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    ASSERT_EQ(rc->triggers(), 1u);
    EXPECT_EQ(rc->accepted(), 0u);
    EXPECT_EQ(rc->rejected(), 1u);
    EXPECT_EQ(rc->generation(), 0u);
    EXPECT_EQ(rc->current(), nullptr);
    ASSERT_EQ(rc->lineage().size(), 1u);
    EXPECT_STREQ(rc->lineage().front().verdict,
                 "worse-than-incumbent");
    const auto *mon = session.healthMonitor();
    ASSERT_NE(mon, nullptr);
    EXPECT_EQ(mon->modelSwaps(), 0u); // rejected refits swap nothing
}

TEST(RecalibrateDeath, ExternalGovernorIsIncompatible)
{
    class Null : public governor::Governor
    {
        std::vector<std::size_t>
        decide(const trace::IntervalRecord &rec, double) override
        {
            return rec.cu_vf;
        }
        std::string name() const override { return "null"; }
    } null_gov;
    EXPECT_DEATH(Session::builder(sim::fx8320Config())
                     .trainingSeed(91)
                     .trainingCombos(smallTrainingSet())
                     .store(runtime::ModelStore(cacheDir()))
                     .onePerCu({"EP"})
                     .governor(null_gov)
                     .recalibration(RecalibrationPolicy{})
                     .build(),
                 "external policy");
}

// --- lineage journal ----------------------------------------------------

TEST(Recalibrate, AdoptionsAreJournalledToTheStore)
{
    const std::string dir = ::testing::TempDir() +
                            "ppep_recal_lineage_" +
                            std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    runtime::ModelStore store(dir);
    auto session = Session::builder(sim::fx8320Config())
                       .seed(5)
                       .trainingSeed(91)
                       .trainingCombos(smallTrainingSet())
                       .store(store)
                       .onePerCu({"EP", "CG", "458.sjeng", "EP"})
                       .faults(driftPlan(5e-4))
                       .recalibration(tightPolicy())
                       .build();
    session.drive(300);
    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    ASSERT_GE(rc->accepted(), 1u);

    const auto lines = store.lineageLines();
    ASSERT_EQ(lines.size(), rc->accepted());
    EXPECT_NE(lines.front().find("gen=1"), std::string::npos);
    EXPECT_NE(lines.front().find("reason=drift-refit"),
              std::string::npos);
    EXPECT_NE(lines.front().find(sim::fx8320Config().name),
              std::string::npos);
    std::filesystem::remove_all(dir);
}

// --- fleet determinism with refits in flight ----------------------------

runtime::FleetSpec
recalFleetSpec()
{
    static const std::vector<std::string> programs = {"EP", "CG",
                                                      "458.sjeng"};
    runtime::FleetSpec spec;
    spec.cfg = sim::fx8320Config();
    spec.training_seed = 91;
    spec.training_combos = smallTrainingSet();
    spec.store.emplace(cacheDir());
    spec.warmup = 1;
    spec.intervals = 220;
    spec.default_recalibration = tightPolicy();
    for (std::size_t i = 0; i < 4; ++i) {
        runtime::FleetSessionSpec ss;
        ss.seed = 7 + i;
        ss.one_per_cu = {programs[i % programs.size()], "EP", "CG",
                         "EP"};
        ss.faults = driftPlan(5e-4);
        spec.sessions.push_back(std::move(ss));
    }
    return spec;
}

TEST(Recalibrate, FleetBitIdenticalAtAnyThreadCount)
{
    // The determinism barrier under test: adoption lands at exactly
    // trigger + adopt_latency regardless of how fast each session's
    // background worker runs, so the telemetry digests (which fold in
    // model generation and the recal counters) cannot depend on the
    // thread count.
    runtime::Fleet serial(recalFleetSpec());
    const auto r1 = serial.run(1);
    runtime::Fleet parallel(recalFleetSpec());
    const auto r4 = parallel.run(4);
    ASSERT_EQ(r1.completed, 4u);
    ASSERT_EQ(r4.completed, 4u);
    bool any_refit = false;
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(r1.sessions[i].telemetry_digest,
                  r4.sessions[i].telemetry_digest)
            << "session " << i;
        any_refit |= r1.sessions[i].summary.recal_accepted > 0;
        EXPECT_EQ(r1.sessions[i].summary.recal_triggers,
                  r4.sessions[i].summary.recal_triggers);
    }
    // The contract is only interesting if refits actually happened.
    EXPECT_TRUE(any_refit);
}

// --- telemetry surface --------------------------------------------------

TEST(Recalibrate, TelemetryCarriesGenerationAndCounters)
{
    runtime::SummarySink summary;
    auto session = Session::builder(sim::fx8320Config())
                       .seed(5)
                       .trainingSeed(91)
                       .trainingCombos(smallTrainingSet())
                       .store(runtime::ModelStore(cacheDir()))
                       .onePerCu({"EP", "CG", "458.sjeng", "EP"})
                       .faults(driftPlan(5e-4))
                       .recalibration(tightPolicy())
                       .sink(summary)
                       .build();
    session.drive(300);
    const auto s = summary.summary();
    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    EXPECT_EQ(s.model_generation, rc->generation());
    EXPECT_EQ(s.recal_triggers, rc->triggers());
    EXPECT_EQ(s.recal_accepted, rc->accepted());
    EXPECT_EQ(s.recal_rejected, rc->rejected());
    EXPECT_TRUE(std::isfinite(s.final_divergence_ewma_w));
    ASSERT_GE(rc->accepted(), 1u);
}

} // namespace
