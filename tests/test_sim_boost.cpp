/**
 * @file
 * Tests for the hardware boost states (the Sec. II/IV-E extension): a
 * firmware-visible boost request that the hardware grants only while
 * few CUs are busy and the die is cool.
 */

#include <gtest/gtest.h>

#include "ppep/sim/chip.hpp"
#include "ppep/workloads/microbench.hpp"

namespace {

using namespace ppep::sim;

TEST(BoostConfig, FactoryAddsTwoStates)
{
    const auto cfg = fx8320ConfigWithBoost();
    ASSERT_EQ(cfg.boost_states.size(), 2u);
    EXPECT_DOUBLE_EQ(cfg.boost_states[0].freq_ghz, 3.8);
    EXPECT_DOUBLE_EQ(cfg.boost_states[1].freq_ghz, 4.0);
    EXPECT_GT(cfg.boost_states[0].voltage, 1.320);
}

TEST(BoostConfig, PlainConfigHasNone)
{
    const auto cfg = fx8320Config();
    EXPECT_TRUE(cfg.boost_states.empty());
    Chip chip(cfg, 1);
    EXPECT_EQ(chip.stateCount(), 5u);
}

TEST(BoostConfigDeath, DescendingBoostRejected)
{
    auto cfg = fx8320Config();
    cfg.boost_states = {{1.40, 3.4}}; // below the 3.5 GHz top P-state
    EXPECT_DEATH(cfg.validate(), "boost states must ascend");
}

TEST(Boost, StateCountAndIndexing)
{
    Chip chip(fx8320ConfigWithBoost(), 1);
    EXPECT_EQ(chip.stateCount(), 7u);
    EXPECT_DOUBLE_EQ(chip.stateOf(4).freq_ghz, 3.5); // VF5
    EXPECT_DOUBLE_EQ(chip.stateOf(5).freq_ghz, 3.8); // boost 1
    EXPECT_DOUBLE_EQ(chip.stateOf(6).freq_ghz, 4.0); // boost 2
}

TEST(BoostDeath, RequestBeyondBoostRejected)
{
    Chip chip(fx8320ConfigWithBoost(), 1);
    EXPECT_DEATH(chip.setCuVf(0, 7), "VF index out of range");
}

TEST(BoostDeath, PlainChipRejectsBoostRequest)
{
    Chip chip(fx8320Config(), 1);
    EXPECT_DEATH(chip.setCuVf(0, 5), "VF index out of range");
}

TEST(Boost, GrantedWhenFewCusBusyAndCool)
{
    Chip chip(fx8320ConfigWithBoost(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA()); // one busy CU
    chip.setCuVf(0, 6);                            // ask for max turbo
    EXPECT_EQ(chip.grantedVf(0), 6u);
}

TEST(Boost, DeniedWhenManyCusBusy)
{
    const auto cfg = fx8320ConfigWithBoost();
    Chip chip(cfg, 1);
    for (std::size_t cu = 0; cu < 4; ++cu)
        chip.setJob(cu * cfg.cores_per_cu,
                    ppep::workloads::makeBenchA());
    chip.setCuVf(0, 6);
    EXPECT_EQ(chip.grantedVf(0), cfg.vf_table.top());
}

TEST(Boost, DeniedWhenHot)
{
    const auto cfg = fx8320ConfigWithBoost();
    Chip chip(cfg, 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    chip.setCuVf(0, 6);
    chip.setTemperatureK(cfg.boost_temp_limit_k + 2.0);
    EXPECT_EQ(chip.grantedVf(0), cfg.vf_table.top());
}

TEST(Boost, PStateRequestsNeverClamped)
{
    const auto cfg = fx8320ConfigWithBoost();
    Chip chip(cfg, 1);
    for (std::size_t cu = 0; cu < 4; ++cu)
        chip.setJob(cu * cfg.cores_per_cu,
                    ppep::workloads::makeBenchA());
    chip.setTemperatureK(360.0);
    chip.setCuVf(0, 2);
    EXPECT_EQ(chip.grantedVf(0), 2u);
}

TEST(Boost, GrantedBoostRaisesThroughputAndPower)
{
    const auto run = [](std::size_t vf_request) {
        Chip chip(fx8320ConfigWithBoost(), 1);
        chip.setJob(0, ppep::workloads::makeBenchA());
        chip.setCuVf(0, vf_request);
        double inst = 0.0, power = 0.0;
        for (int i = 0; i < 20; ++i) {
            const auto r = chip.step();
            inst += r.truth.activity[0].instructions;
            power += r.truth.power.total;
        }
        return std::pair{inst, power};
    };
    const auto [i_base, p_base] = run(4); // VF5
    const auto [i_boost, p_boost] = run(6); // 4.0 GHz turbo
    EXPECT_NEAR(i_boost / i_base, 4.0 / 3.5, 0.02);
    EXPECT_GT(p_boost, p_base * 1.05);
}

TEST(Boost, ThermalThrottlingKicksInUnderSustainedLoad)
{
    // Boost from a warm start near the limit: the extra power heats the
    // die past boost_temp_limit_k, after which grants revert to VF5 —
    // exactly why the paper disables boost for controlled experiments.
    const auto cfg = fx8320ConfigWithBoost();
    Chip chip(cfg, 1);
    for (std::size_t core : {0u, 1u, 2u, 3u}) // both cores of 2 CUs
        chip.setJob(core, ppep::workloads::makeHeater());
    chip.setAllVf(6);
    chip.setTemperatureK(cfg.boost_temp_limit_k - 1.0);
    EXPECT_EQ(chip.grantedVf(0), 6u);
    chip.run(600); // 12 s of boosted heating
    EXPECT_EQ(chip.grantedVf(0), cfg.vf_table.top());
}

TEST(Boost, BoostDependsOnOtherCusActivity)
{
    // The same request flips between granted and denied as background
    // CUs wake up — the "unexpectedly entering a boost state" effect on
    // counters the paper guards against.
    const auto cfg = fx8320ConfigWithBoost();
    Chip chip(cfg, 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    chip.setCuVf(0, 5);
    EXPECT_EQ(chip.grantedVf(0), 5u);
    for (std::size_t cu = 1; cu < 4; ++cu)
        chip.setJob(cu * cfg.cores_per_cu,
                    ppep::workloads::makeBenchA());
    EXPECT_EQ(chip.grantedVf(0), cfg.vf_table.top());
    for (std::size_t cu = 1; cu < 4; ++cu)
        chip.clearJob(cu * cfg.cores_per_cu);
    EXPECT_EQ(chip.grantedVf(0), 5u);
}

} // namespace
