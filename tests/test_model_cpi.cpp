/**
 * @file
 * Unit + integration tests for the Eq. 1 CPI predictor, including the
 * paper's instruction-aligned segment validation method (Sec. III).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ppep/model/cpi_model.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/trace/segmenter.hpp"
#include "ppep/util/stats.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;

sim::EventVector
makeEvents(double inst, double cycles, double mab)
{
    sim::EventVector ev{};
    ev[sim::eventIndex(sim::Event::RetiredInst)] = inst;
    ev[sim::eventIndex(sim::Event::ClocksNotHalted)] = cycles;
    ev[sim::eventIndex(sim::Event::MabWaitCycles)] = mab;
    return ev;
}

TEST(CpiModel, FromEventsComputesRatios)
{
    const auto s = CpiModel::fromEvents(makeEvents(100.0, 250.0, 50.0));
    EXPECT_DOUBLE_EQ(s.cpi, 2.5);
    EXPECT_DOUBLE_EQ(s.mcpi, 0.5);
    EXPECT_DOUBLE_EQ(s.ccpi(), 2.0);
}

TEST(CpiModel, FromEventsIdleIsZero)
{
    const auto s = CpiModel::fromEvents(makeEvents(0.0, 0.0, 0.0));
    EXPECT_DOUBLE_EQ(s.cpi, 0.0);
    EXPECT_DOUBLE_EQ(s.mcpi, 0.0);
}

TEST(CpiModel, FromEventsCorruptInputsYieldTheIdleSentinel)
{
    // Faulty hardware hands the model zeros, NaNs, and wrapped counts;
    // the defined result is the all-zero idle sentinel, never NaN/Inf.
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    const sim::EventVector cases[] = {
        makeEvents(0.0, 1e9, 1e8),   // zero retired, nonzero cycles
        makeEvents(nan, 1e9, 1e8),   // NaN retired
        makeEvents(-5.0, 1e9, 1e8),  // negative (wrap delta bug)
        makeEvents(100.0, nan, 1.0), // NaN cycles
        makeEvents(100.0, inf, 1.0), // Inf cycles
        makeEvents(100.0, -2.0, 1.0) // negative cycles
    };
    for (const auto &ev : cases) {
        const auto s = CpiModel::fromEvents(ev);
        EXPECT_DOUBLE_EQ(s.cpi, 0.0);
        EXPECT_DOUBLE_EQ(s.mcpi, 0.0);
        EXPECT_DOUBLE_EQ(s.ccpi(), 0.0);
    }
}

TEST(CpiModel, FromEventsNeverReturnsNonFinite)
{
    const double nan = std::nan("");
    for (double inst : {0.0, nan, 1.0, 1e20})
        for (double cyc : {0.0, nan, 2.0, 1e20})
            for (double mab : {0.0, nan, 0.5}) {
                const auto s =
                    CpiModel::fromEvents(makeEvents(inst, cyc, mab));
                EXPECT_TRUE(std::isfinite(s.cpi));
                EXPECT_TRUE(std::isfinite(s.mcpi));
                EXPECT_GE(s.mcpi, 0.0);
            }
}

TEST(CpiModel, FromEventsClampsMcpiToCpi)
{
    // Multiplexing extrapolation can overshoot E12.
    const auto s = CpiModel::fromEvents(makeEvents(100.0, 200.0, 300.0));
    EXPECT_DOUBLE_EQ(s.mcpi, s.cpi);
    EXPECT_DOUBLE_EQ(s.ccpi(), 0.0);
}

TEST(CpiModel, Equation1Identity)
{
    // CPI(f') = CCPI + MCPI * f'/f.
    CpiSample s{2.0, 0.8};
    EXPECT_DOUBLE_EQ(CpiModel::predictCpi(s, 2.0, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(CpiModel::predictCpi(s, 2.0, 4.0), 1.2 + 1.6);
    EXPECT_DOUBLE_EQ(CpiModel::predictCpi(s, 2.0, 1.0), 1.2 + 0.4);
}

TEST(CpiModel, PredictMcpiScalesLinearly)
{
    CpiSample s{2.0, 0.8};
    EXPECT_DOUBLE_EQ(CpiModel::predictMcpi(s, 2.0, 3.0), 1.2);
}

TEST(CpiModel, CpuBoundIpsScalesWithFrequency)
{
    CpiSample s{1.0, 0.0}; // no memory time
    const double ips_lo = CpiModel::predictIps(s, 1.4, 1.4);
    const double ips_hi = CpiModel::predictIps(s, 1.4, 3.5);
    EXPECT_NEAR(ips_hi / ips_lo, 2.5, 1e-12);
}

TEST(CpiModel, MemoryBoundIpsSublinear)
{
    CpiSample s{3.0, 2.5}; // mostly memory time
    const double speedup = CpiModel::predictSpeedup(s, 1.4, 3.5);
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 1.5); // far below the 2.5x clock ratio
}

TEST(CpiModel, SpeedupSymmetry)
{
    CpiSample s{2.0, 0.8};
    const double up = CpiModel::predictSpeedup(s, 1.4, 3.5);
    // Predicting down from the predicted state must invert the ratio.
    CpiSample at_hi{CpiModel::predictCpi(s, 1.4, 3.5),
                    CpiModel::predictMcpi(s, 1.4, 3.5)};
    const double down = CpiModel::predictSpeedup(at_hi, 3.5, 1.4);
    EXPECT_NEAR(up * down, 1.0, 1e-12);
}

/**
 * The paper's Sec. III validation: run single-threaded benchmarks at two
 * VF states, align the traces by instructions, and compare predicted
 * vs. actual cycles per segment. The paper reports 3.4% (VF5->VF2) and
 * 3.0% (VF2->VF5); the simulator should land in the same few-percent
 * band.
 */
class CpiPredictionAccuracy
    : public ::testing::TestWithParam<const char *>
{
  protected:
    std::vector<ppep::trace::IntervalRecord>
    runAt(std::size_t vf)
    {
        sim::Chip chip(sim::fx8320Config(), 99);
        chip.setAllVf(vf);
        const auto &prof =
            ppep::workloads::Suite::byName(GetParam());
        chip.setJob(0, prof.makeJob());
        ppep::trace::Collector col(chip);
        auto recs = col.collectUntilFinished(200);
        while (!recs.empty() && recs.back().busy_cores == 0)
            recs.pop_back();
        return recs;
    }

    /** Mean segment error predicting from vf_a's trace to vf_b's. */
    double
    segmentError(std::size_t vf_a, std::size_t vf_b)
    {
        const auto cfg = sim::fx8320Config();
        const auto trace_a = runAt(vf_a);
        const auto trace_b = runAt(vf_b);
        const ppep::trace::InstructionTimeline tl_a(trace_a, 0, true);
        const ppep::trace::InstructionTimeline tl_b(trace_b, 0, true);
        const double total = std::min(tl_a.totalInstructions(),
                                      tl_b.totalInstructions());
        const double width = total / 20.0;
        const double fa = cfg.vf_table.state(vf_a).freq_ghz;
        const double fb = cfg.vf_table.state(vf_b).freq_ghz;

        ppep::util::RunningStats err;
        for (int i = 0; i < 20; ++i) {
            const double s = width * i, e = width * (i + 1);
            const double cyc_a =
                tl_a.cyclesAt(e) - tl_a.cyclesAt(s);
            const double mab_a =
                tl_a.mabCyclesAt(e) - tl_a.mabCyclesAt(s);
            const double cyc_b =
                tl_b.cyclesAt(e) - tl_b.cyclesAt(s);
            // Eq. 1 on segment totals.
            const double pred = (cyc_a - mab_a) + mab_a * fb / fa;
            err.add(std::abs(pred - cyc_b) / cyc_b);
        }
        return err.mean();
    }
};

TEST_P(CpiPredictionAccuracy, DownscaleWithinPaperBand)
{
    // VF5 (index 4) -> VF2 (index 1); paper: 3.4% average.
    EXPECT_LT(segmentError(4, 1), 0.08) << GetParam();
}

TEST_P(CpiPredictionAccuracy, UpscaleWithinPaperBand)
{
    // VF2 -> VF5; paper: 3.0% average.
    EXPECT_LT(segmentError(1, 4), 0.08) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, CpiPredictionAccuracy,
                         ::testing::Values("433.milc", "458.sjeng",
                                           "429.mcf", "456.hmmer",
                                           "canneal", "EP"));

} // namespace
