/**
 * @file
 * Unit tests for the assembled ChipPowerModel (idle + dynamic +
 * cross-VF event extrapolation) on controlled synthetic records.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/model/chip_power_model.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;

/** An idle model with known linear behaviour: P = 10 V + 0.1 V T. */
IdlePowerModel
syntheticIdle()
{
    return IdlePowerModel::fromPolynomials(
        ppep::math::Polynomial({0.0, 0.1}), // W1(V) = 0.1 V
        ppep::math::Polynomial({0.0, 10.0})); // W0(V) = 10 V
}

/** A dynamic model with one nonzero weight on E1 and one on E9. */
DynamicPowerModel
syntheticDynamic()
{
    std::array<double, sim::kNumPowerEvents> w{};
    w[0] = 2e-9;  // E1: 2 nJ per uop
    w[8] = 1e-9;  // E9: 1 nJ per stall cycle (NB proxy, unscaled)
    return DynamicPowerModel::fromWeights(w, 1.32, 2.0);
}

ChipPowerModel
syntheticModel()
{
    return ChipPowerModel(syntheticIdle(), syntheticDynamic(),
                          sim::fx8320VfTable());
}

/** One busy core: 1e9 inst over 0.2 s with simple proportions. */
ppep::trace::IntervalRecord
record(std::size_t vf_index)
{
    ppep::trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.cu_vf.assign(4, vf_index);
    rec.diode_temp_k = 320.0;
    rec.pmc.assign(8, sim::EventVector{});
    auto &ev = rec.pmc[0];
    const double inst = 1e9 * 0.2;
    ev[sim::eventIndex(sim::Event::RetiredInst)] = inst;
    ev[sim::eventIndex(sim::Event::RetiredUop)] = 1.5 * inst;
    // CPI 2.0 with half the cycles in memory stalls at VF5 (3.5 GHz).
    ev[sim::eventIndex(sim::Event::ClocksNotHalted)] = 2.0 * inst;
    ev[sim::eventIndex(sim::Event::MabWaitCycles)] = 1.0 * inst;
    ev[sim::eventIndex(sim::Event::DispatchStall)] = 1.2 * inst;
    return rec;
}

TEST(ChipPowerModel, EstimateSumsIdleAndDynamic)
{
    const auto model = syntheticModel();
    const auto rec = record(4); // VF5: 1.32 V
    const auto est = model.estimate(rec);
    const double idle = 10.0 * 1.32 + 0.1 * 1.32 * 320.0;
    // E1 rate = 1.5e9/s at 2 nJ, (V/Vt)^2 = 1 -> 3 W core part;
    // E9 rate = 1.2e9/s at 1 nJ -> 1.2 W NB part.
    EXPECT_NEAR(est.idle_w, idle, 1e-9);
    EXPECT_NEAR(est.dyn_core_w, 3.0, 1e-9);
    EXPECT_NEAR(est.dyn_nb_w, 1.2, 1e-9);
    EXPECT_NEAR(est.total_w, idle + 4.2, 1e-9);
}

TEST(ChipPowerModel, SelfPredictionMatchesEstimate)
{
    const auto model = syntheticModel();
    const auto rec = record(4);
    const auto est = model.estimate(rec);
    const auto pred = model.predictAt(rec, 4);
    EXPECT_NEAR(pred.total_w, est.total_w, est.total_w * 1e-9);
}

TEST(ChipPowerModel, PredictionAppliesEquationOne)
{
    // At VF2 (1.7 GHz) the memory cycles shrink by f'/f while core
    // cycles stay: CPI' = 1.0 + 1.0 * 1.7/3.5, so the E1 rate falls by
    // (f'/f) * CPI/CPI' and the core part additionally rescales by
    // (V'/Vt)^alpha.
    const auto model = syntheticModel();
    const auto rec = record(4);
    const auto pred = model.predictAt(rec, 1); // VF2: 1.008 V, 1.7 GHz

    const double cpi_now = 2.0;
    const double cpi_then = 1.0 + 1.0 * 1.7 / 3.5;
    // The record's core was only 2e9/3.5e9 = 57% busy (1e9 inst/s at
    // CPI 2 on a 3.5 GHz clock); predicted rates keep that duty cycle.
    const double busy_frac = (2.0 * 1e9) / 3.5e9;
    const double ips_then = 1.7e9 / cpi_then * busy_frac;
    const double e1_rate_then = 1.5 * ips_then;
    const double vscale = std::pow(1.008 / 1.32, 2.0);
    EXPECT_NEAR(pred.dyn_core_w, 2e-9 * e1_rate_then * vscale, 1e-6);

    // E9/inst at the target follows Obs. 2: gap = CPI - DS/inst = 0.8
    // is invariant, so DS/inst' = CPI' - 0.8.
    const double ds_per_inst_then = cpi_then - (cpi_now - 1.2);
    EXPECT_NEAR(pred.dyn_nb_w, 1e-9 * ds_per_inst_then * ips_then,
                1e-6);
    (void)cpi_now;
}

TEST(ChipPowerModel, IdleUsesTargetVoltageAndCurrentTemperature)
{
    const auto model = syntheticModel();
    const auto rec = record(4);
    const auto pred = model.predictAt(rec, 0); // VF1: 0.888 V
    EXPECT_NEAR(pred.idle_w, 10.0 * 0.888 + 0.1 * 0.888 * 320.0,
                1e-9);
}

TEST(ChipPowerModel, IdleCoresContributeNothingDynamic)
{
    const auto model = syntheticModel();
    ppep::trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.cu_vf.assign(4, 4);
    rec.diode_temp_k = 315.0;
    rec.pmc.assign(8, sim::EventVector{}); // all idle
    const auto est = model.estimate(rec);
    EXPECT_DOUBLE_EQ(est.dynamic_w, 0.0);
    const auto pred = model.predictAt(rec, 0);
    EXPECT_DOUBLE_EQ(pred.dynamic_w, 0.0);
}

TEST(ChipPowerModel, TrainedFlagTracksSubmodels)
{
    ChipPowerModel empty;
    EXPECT_FALSE(empty.trained());
    EXPECT_TRUE(syntheticModel().trained());
}

TEST(ChipPowerModelDeath, UntrainedEstimatePanics)
{
    ChipPowerModel empty;
    const auto rec = record(4);
    EXPECT_DEATH(empty.estimate(rec), "not trained");
}

TEST(ChipPowerModelDeath, RecordWithoutVfContextPanics)
{
    const auto model = syntheticModel();
    ppep::trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.pmc.assign(8, sim::EventVector{});
    EXPECT_DEATH(model.estimate(rec), "VF context");
}

} // namespace
