/**
 * @file
 * Tests for runtime::Session and the telemetry sinks: a Session must
 * reproduce the hand-assembled GovernorLoop flow exactly, and the sinks
 * must emit well-formed, complete telemetry.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "ppep/governor/energy_governor.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/governor/iterative_capping.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;

/** Models trained once and shared by every test in this binary. */
struct Shared
{
    sim::ChipConfig cfg = sim::fx8320Config();
    model::TrainedModels models;

    Shared()
    {
        model::Trainer trainer(cfg, 33);
        std::vector<const workloads::Combination *> training;
        for (const auto &c : workloads::allCombinations())
            if (c.instances.size() == 1 && training.size() < 10)
                training.push_back(&c);
        models = trainer.trainAll(training);
    }

    static const Shared &
    get()
    {
        static const Shared s;
        return s;
    }
};

const std::vector<std::string> kMix = {"433.milc", "458.sjeng", "CG",
                                       "EP"};

/** The pre-runtime-layer assembly, verbatim. */
std::vector<governor::GovernorStep>
manualRun(const Shared &s, std::size_t intervals)
{
    const model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    sim::Chip chip(s.cfg, 123);
    chip.setPowerGatingEnabled(true);
    for (std::size_t i = 0; i < kMix.size() && i < s.cfg.n_cus; ++i)
        chip.setJob(i * s.cfg.cores_per_cu,
                    workloads::Suite::byName(kMix[i]).makeLoopingJob());
    governor::EnergyOptimalGovernor gov(s.cfg, ppep,
                                        governor::EnergyObjective::Edp);
    governor::GovernorLoop loop(chip, gov);
    return loop.run(intervals, governor::CapSchedule::unlimited());
}

TEST(Session, ReproducesManualGovernorLoopTrace)
{
    const auto &s = Shared::get();
    const std::size_t intervals = 20;
    const auto manual = manualRun(s, intervals);

    auto session = runtime::Session::builder(s.cfg)
                       .seed(123)
                       .pg(true)
                       .onePerCu(kMix)
                       .models(s.models)
                       .governor(runtime::edpGovernor())
                       .build();
    const auto steps = session.run(intervals);

    ASSERT_EQ(steps.size(), manual.size());
    for (std::size_t i = 0; i < steps.size(); ++i) {
        EXPECT_EQ(steps[i].cu_vf, manual[i].cu_vf) << "interval " << i;
        EXPECT_DOUBLE_EQ(steps[i].rec.sensor_power_w,
                         manual[i].rec.sensor_power_w)
            << "interval " << i;
        EXPECT_DOUBLE_EQ(steps[i].rec.diode_temp_k,
                         manual[i].rec.diode_temp_k)
            << "interval " << i;
    }
}

TEST(Session, SummarySinkMatchesGovernorMetrics)
{
    const auto &s = Shared::get();
    auto cfg = s.cfg;
    // Per-CU planes, as the capping governor assumes. The shared models
    // stay valid: the VF table is unchanged and the trained components
    // don't depend on the rail topology.
    cfg.per_cu_voltage = true;

    runtime::SummarySink summary;
    const governor::CapSchedule swing({{0, 110.0}, {10, 55.0}});
    auto session = runtime::Session::builder(cfg)
                       .seed(99)
                       .pg(true)
                       .onePerCu(kMix)
                       .models(s.models)
                       .governor(runtime::cappingGovernor())
                       .schedule(swing)
                       .sink(summary)
                       .build();
    const auto steps = session.run(30);

    const auto sum = summary.summary();
    EXPECT_EQ(sum.intervals, steps.size());
    EXPECT_DOUBLE_EQ(sum.cap_adherence, governor::capAdherence(steps));
    EXPECT_DOUBLE_EQ(sum.mean_settle_intervals,
                     governor::meanSettleIntervals(steps));

    // Residency counts every CU-interval exactly once.
    std::size_t residency_total = 0;
    for (std::size_t n : sum.vf_residency)
        residency_total += n;
    EXPECT_EQ(residency_total, steps.size() * cfg.n_cus);

    // The capping governor predicts power for every interval after the
    // first; MAE against the sensor must come out small but non-zero.
    EXPECT_EQ(sum.predicted_intervals, steps.size() - 1);
    EXPECT_TRUE(std::isfinite(sum.power_mae_w));
    EXPECT_GT(sum.power_mae_w, 0.0);
    EXPECT_LT(sum.power_mae_w, 25.0);
    EXPECT_GT(sum.mean_decision_latency_s, 0.0);
    EXPECT_GE(sum.max_decision_latency_s,
              sum.mean_decision_latency_s);
}

/** Pull `"key":value` out of a JSONL line; value as raw text. */
std::string
jsonField(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return {};
    auto end = pos + needle.size();
    int depth = 0;
    std::string out;
    while (end < line.size()) {
        const char c = line[end];
        if (c == '[')
            ++depth;
        if (c == ']') {
            if (depth == 0)
                break;
            --depth;
        }
        if (depth == 0 && (c == ',' || c == '}'))
            break;
        out += c;
        ++end;
    }
    return out;
}

TEST(Session, JsonlSinkEmitsOneParseableLinePerInterval)
{
    const auto &s = Shared::get();
    std::ostringstream out;
    runtime::JsonlSink jsonl(out);
    auto session = runtime::Session::builder(s.cfg)
                       .seed(123)
                       .pg(true)
                       .onePerCu(kMix)
                       .models(s.models)
                       .governor(runtime::edpGovernor())
                       .sink(jsonl)
                       .build();
    const std::size_t intervals = 12;
    const auto steps = session.run(intervals);

    std::istringstream lines(out.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');

        EXPECT_EQ(jsonField(line, "interval"),
                  std::to_string(count));

        // Measured chip power must match the step record exactly.
        const std::string measured =
            jsonField(line, "measured_power_w");
        ASSERT_FALSE(measured.empty());
        EXPECT_DOUBLE_EQ(std::strtod(measured.c_str(), nullptr),
                         steps[count].rec.sensor_power_w);

        // Predicted power: null on the very first interval (nothing
        // had been forecast yet), a finite number afterwards.
        const std::string predicted =
            jsonField(line, "predicted_power_w");
        if (count == 0) {
            EXPECT_EQ(predicted, "null");
        } else {
            EXPECT_NE(predicted, "null");
            EXPECT_TRUE(std::isfinite(
                std::strtod(predicted.c_str(), nullptr)));
        }

        const std::string latency =
            jsonField(line, "decision_latency_us");
        ASSERT_FALSE(latency.empty());
        EXPECT_GT(std::strtod(latency.c_str(), nullptr), 0.0);

        const std::string cu_vf = jsonField(line, "cu_vf");
        EXPECT_EQ(cu_vf.front(), '[');
        ++count;
    }
    EXPECT_EQ(count, intervals);
}

TEST(Session, CsvSinkWritesHeaderAndRows)
{
    const auto &s = Shared::get();
    std::ostringstream out;
    runtime::CsvSink csv(out);
    auto session = runtime::Session::builder(s.cfg)
                       .seed(7)
                       .onePerCu({"458.sjeng"})
                       .models(s.models)
                       .sink(csv)
                       .build();
    session.run(5);

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line))
        rows.push_back(line);
    ASSERT_EQ(rows.size(), 6u); // header + 5 intervals
    EXPECT_EQ(rows[0].find("interval,time_s,cap_w"), 0u);
    EXPECT_EQ(rows[1].find("0,"), 0u);
}

TEST(Session, ExternalGovernorNeedsNoModels)
{
    const auto &s = Shared::get();
    governor::IterativeCappingGovernor reactive(s.cfg);
    auto session = runtime::Session::builder(s.cfg)
                       .seed(11)
                       .onePerCu({"EP", "EP"})
                       .governor(reactive)
                       .schedule(governor::CapSchedule(80.0))
                       .build();
    EXPECT_FALSE(session.hasModels());
    const auto steps = session.run(8);
    EXPECT_EQ(steps.size(), 8u);
    EXPECT_EQ(&session.policy(), &reactive);
}

TEST(Session, FailedSinksAreReportedNotSilent)
{
    // A full disk (stream failure) mid-run must surface through both
    // the sink's own error state and Session::sinkErrors().
    const auto &s = Shared::get();
    governor::IterativeCappingGovernor reactive(s.cfg);
    std::ostringstream csv_out, jsonl_out;
    runtime::CsvSink csv(csv_out);
    runtime::JsonlSink jsonl(jsonl_out);
    auto session = runtime::Session::builder(s.cfg)
                       .seed(11)
                       .onePerCu({"EP"})
                       .governor(reactive)
                       .sink(csv)
                       .sink(jsonl)
                       .build();

    csv_out.setstate(std::ios::badbit); // the "disk fills up" moment
    session.run(3);

    EXPECT_TRUE(csv.failed());
    EXPECT_NE(csv.error().find("csv telemetry write failed"),
              std::string::npos);
    EXPECT_FALSE(jsonl.failed());
    EXPECT_TRUE(jsonl.error().empty());
    ASSERT_EQ(session.sinkErrors().size(), 1u);
    EXPECT_EQ(session.sinkErrors()[0], csv.error());

    // A later healthy run reports no stale errors from the sinks that
    // recovered... the CSV stream is still bad, so it stays reported.
    session.run(2);
    EXPECT_EQ(session.sinkErrors().size(), 1u);
}

TEST(Session, HardenedRunsExtendTelemetryPlainRunsDoNot)
{
    const auto &s = Shared::get();
    governor::IterativeCappingGovernor reactive(s.cfg);

    std::ostringstream plain_csv;
    {
        runtime::CsvSink csv(plain_csv);
        auto session = runtime::Session::builder(s.cfg)
                           .seed(5)
                           .onePerCu({"EP"})
                           .governor(reactive)
                           .sink(csv)
                           .build();
        session.run(2);
    }
    EXPECT_EQ(plain_csv.str().find("fault_events"), std::string::npos);

    governor::IterativeCappingGovernor reactive2(s.cfg);
    std::ostringstream csv_out, jsonl_out;
    {
        runtime::CsvSink csv(csv_out);
        runtime::JsonlSink jsonl(jsonl_out);
        auto session = runtime::Session::builder(s.cfg)
                           .seed(5)
                           .onePerCu({"EP"})
                           .governor(reactive2)
                           .faults(sim::FaultPlan::parse("msr=0.5"))
                           .sink(csv)
                           .sink(jsonl)
                           .build();
        session.run(4);
    }
    // Header gains the health columns, rows carry the degraded flag.
    std::istringstream lines(csv_out.str());
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_NE(header.find(",fault_events,"), std::string::npos);
    EXPECT_NE(header.find(",degraded"), std::string::npos);

    std::istringstream jlines(jsonl_out.str());
    std::string line;
    bool saw_fault_events = false;
    while (std::getline(jlines, line)) {
        EXPECT_FALSE(jsonField(line, "fault_events").empty());
        const std::string flag = jsonField(line, "degraded");
        EXPECT_TRUE(flag == "true" || flag == "false");
        saw_fault_events |=
            jsonField(line, "fault_events") != "0";
    }
    EXPECT_TRUE(saw_fault_events); // msr=0.5 fails plenty of reads
}

TEST(Session, ZeroFaultPlanHardenedTraceMatchesPlainRun)
{
    // The hardened stack (Sampler + HealthMonitor + degraded wrapper)
    // around perfect hardware must reproduce the plain session's trace
    // bit for bit — the whole layer is strictly opt-in.
    const auto &s = Shared::get();
    auto run = [&](bool hardened) {
        governor::IterativeCappingGovernor reactive(s.cfg);
        auto builder = runtime::Session::builder(s.cfg)
                           .seed(21)
                           .onePerCu(kMix)
                           .governor(reactive)
                           .schedule(governor::CapSchedule(80.0));
        if (hardened)
            builder.faults(sim::FaultPlan{});
        auto session = builder.build();
        auto steps = session.run(15);
        if (hardened) {
            EXPECT_TRUE(session.hardened());
            EXPECT_EQ(session.sampler()->lastHealth().total_fault_events,
                      0u);
            EXPECT_FALSE(session.healthMonitor()->degraded());
            EXPECT_EQ(session.policy().name(),
                      "degraded-mode(simple-iterative)");
        } else {
            EXPECT_FALSE(session.hardened());
            EXPECT_EQ(session.sampler(), nullptr);
        }
        return steps;
    };

    const auto plain = run(false);
    const auto hardened = run(true);
    ASSERT_EQ(plain.size(), hardened.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].cu_vf, hardened[i].cu_vf) << "interval " << i;
        EXPECT_EQ(plain[i].rec.sensor_power_w,
                  hardened[i].rec.sensor_power_w)
            << "interval " << i;
        EXPECT_EQ(plain[i].rec.diode_temp_k,
                  hardened[i].rec.diode_temp_k)
            << "interval " << i;
        for (std::size_t c = 0; c < plain[i].rec.pmc.size(); ++c)
            for (std::size_t e = 0; e < sim::kNumEvents; ++e)
                EXPECT_EQ(plain[i].rec.pmc[c][e],
                          hardened[i].rec.pmc[c][e]);
    }
}

TEST(Session, TelemetryIndicesContinueAcrossRuns)
{
    const auto &s = Shared::get();
    std::ostringstream out;
    runtime::JsonlSink jsonl(out);
    auto session = runtime::Session::builder(s.cfg)
                       .seed(3)
                       .onePerCu({"CG"})
                       .models(s.models)
                       .sink(jsonl)
                       .build();
    session.run(3);
    session.run(2);

    std::istringstream lines(out.str());
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line))
        rows.push_back(line);
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(jsonField(rows.back(), "interval"), "4");
}

} // namespace
