/**
 * @file
 * Cross-platform property suite: the full PPEP pipeline must hold on
 * both simulated parts (FX-8320 and Phenom II X6 1090T), exactly as the
 * paper validates its generality claim (Sec. IV-E) on two processors.
 * Parameterised over the platform so every invariant runs twice.
 */

#include <gtest/gtest.h>

#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/stats.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;

enum class Platform
{
    Fx8320,
    PhenomII,
};

sim::ChipConfig
configOf(Platform p)
{
    return p == Platform::Fx8320 ? sim::fx8320Config()
                                 : sim::phenomIIConfig();
}

/** Per-platform trained models, built once each. */
const model::TrainedModels &
modelsOf(Platform p)
{
    static const auto build = [](Platform plat) {
        const auto cfg = configOf(plat);
        model::Trainer trainer(cfg, 2023);
        std::vector<const workloads::Combination *> training;
        for (const auto &c : workloads::allCombinations()) {
            if (c.instances.size() != 1)
                continue;
            // The Phenom study uses PARSEC + NPB only, as the paper does.
            if (plat == Platform::PhenomII &&
                c.suite == workloads::SuiteId::Spec)
                continue;
            if (training.size() < 14)
                training.push_back(&c);
        }
        return trainer.trainAll(training);
    };
    static const model::TrainedModels fx = build(Platform::Fx8320);
    static const model::TrainedModels ph = build(Platform::PhenomII);
    return p == Platform::Fx8320 ? fx : ph;
}

class PlatformSweep : public ::testing::TestWithParam<Platform>
{
  protected:
    sim::ChipConfig cfg_ = configOf(GetParam());
    const model::TrainedModels &models_ = modelsOf(GetParam());

    trace::IntervalRecord
    measure(const std::string &program, std::size_t copies)
    {
        sim::Chip chip(cfg_, 9);
        chip.setAllVf(cfg_.vf_table.top());
        workloads::launch(chip, workloads::replicate(program, copies),
                          true);
        trace::Collector col(chip);
        col.collect(3);
        return col.collectInterval();
    }
};

TEST_P(PlatformSweep, AlphaRecoveredNearGroundTruth)
{
    EXPECT_NEAR(models_.alpha, cfg_.power.alpha_true, 0.3);
}

TEST_P(PlatformSweep, SelfEstimateTracksSensor)
{
    const auto rec = measure("CG", 2);
    const auto est = models_.chip.estimate(rec);
    EXPECT_NEAR(est.total_w / rec.sensor_power_w, 1.0, 0.10);
}

TEST_P(PlatformSweep, CrossVfPredictionTracksActualRun)
{
    const auto rec = measure("streamcluster", 2);
    const auto pred = models_.chip.predictAt(rec, 1);

    sim::Chip chip(cfg_, 9);
    chip.setAllVf(1);
    workloads::launch(chip, workloads::replicate("streamcluster", 2),
                      true);
    trace::Collector col(chip);
    col.collect(3);
    const auto actual = col.collectInterval();
    EXPECT_NEAR(pred.total_w / actual.sensor_power_w, 1.0, 0.15);
}

TEST_P(PlatformSweep, PredictedPowerMonotoneInVf)
{
    const auto rec = measure("EP", cfg_.n_cus);
    double prev = 0.0;
    for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf) {
        const auto est = models_.chip.predictAt(rec, vf);
        EXPECT_GT(est.total_w, prev) << "VF index " << vf;
        prev = est.total_w;
    }
}

TEST_P(PlatformSweep, MemoryBoundSpeedupSaturates)
{
    const auto mem = measure("CG", 1);
    const auto cpu = measure("EP", 1);
    const double f_lo = cfg_.vf_table.state(0).freq_ghz;
    const double f_hi =
        cfg_.vf_table.state(cfg_.vf_table.top()).freq_ghz;
    const double clock_ratio = f_hi / f_lo;

    auto speedup = [&](const trace::IntervalRecord &rec) {
        const auto s = model::CpiModel::fromEvents(rec.pmc[0]);
        return model::CpiModel::predictSpeedup(s, f_hi, f_lo);
    };
    // Downscaling hurts the CPU-bound program nearly 1/clock_ratio but
    // the memory-bound one much less.
    EXPECT_LT(speedup(cpu), 1.0 / clock_ratio * 1.1);
    EXPECT_GT(speedup(mem), 1.0 / clock_ratio * 1.15);
}

TEST_P(PlatformSweep, IdleModelCoversOperatingRange)
{
    // Idle power prediction stays positive and monotone in V across the
    // platform's own table and plausible temperatures.
    for (double t : {305.0, 320.0, 335.0}) {
        double prev = 0.0;
        for (std::size_t vf = 0; vf < cfg_.vf_table.size(); ++vf) {
            const double p = models_.idle.predict(
                cfg_.vf_table.state(vf).voltage, t);
            EXPECT_GT(p, 0.0);
            EXPECT_GT(p, prev);
            prev = p;
        }
    }
}

TEST_P(PlatformSweep, EnergyPredictionTracksNextInterval)
{
    sim::Chip chip(cfg_, 31);
    workloads::launch(chip, workloads::replicate("LU", 2), true);
    trace::Collector col(chip);
    col.collect(3);
    util::RunningStats err;
    auto prev = col.collectInterval();
    for (int i = 0; i < 10; ++i) {
        const auto next = col.collectInterval();
        const double est_j =
            models_.chip.estimate(prev).total_w * prev.duration_s;
        const double meas_j = next.sensor_power_w * next.duration_s;
        err.add(util::absRelErr(est_j, meas_j));
        prev = next;
    }
    EXPECT_LT(err.mean(), 0.10);
}

INSTANTIATE_TEST_SUITE_P(Platforms, PlatformSweep,
                         ::testing::Values(Platform::Fx8320,
                                           Platform::PhenomII),
                         [](const auto &info) {
                             return info.param == Platform::Fx8320
                                        ? "Fx8320"
                                        : "PhenomII";
                         });

} // namespace
