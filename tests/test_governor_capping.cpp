/**
 * @file
 * Tests for the power-capping governors (the Fig. 7 experiment) and the
 * control-loop machinery.
 */

#include <gtest/gtest.h>

#include "ppep/governor/governor.hpp"
#include "ppep/governor/iterative_capping.hpp"
#include "ppep/governor/ppep_capping.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::governor;
namespace sim = ppep::sim;
namespace wl = ppep::workloads;
namespace model = ppep::model;

TEST(CapSchedule, ConstantCap)
{
    CapSchedule s(100.0);
    EXPECT_DOUBLE_EQ(s.capAt(0), 100.0);
    EXPECT_DOUBLE_EQ(s.capAt(999), 100.0);
}

TEST(CapSchedule, PiecewiseSteps)
{
    CapSchedule s({{0, 120.0}, {10, 60.0}, {20, 90.0}});
    EXPECT_DOUBLE_EQ(s.capAt(0), 120.0);
    EXPECT_DOUBLE_EQ(s.capAt(9), 120.0);
    EXPECT_DOUBLE_EQ(s.capAt(10), 60.0);
    EXPECT_DOUBLE_EQ(s.capAt(19), 60.0);
    EXPECT_DOUBLE_EQ(s.capAt(25), 90.0);
}

TEST(CapSchedule, UnlimitedIsHuge)
{
    EXPECT_GT(CapSchedule::unlimited().capAt(0), 1e9);
}

TEST(CapScheduleDeath, MustStartAtZero)
{
    EXPECT_DEATH(CapSchedule({{5, 100.0}}), "start at interval 0");
}

TEST(Metrics, AdherenceCountsUnderCap)
{
    std::vector<GovernorStep> steps(4);
    for (auto &s : steps)
        s.cap_w = 100.0;
    steps[0].rec.sensor_power_w = 90.0;
    steps[1].rec.sensor_power_w = 101.0; // within 2% grace
    steps[2].rec.sensor_power_w = 110.0; // violation
    steps[3].rec.sensor_power_w = 95.0;
    EXPECT_DOUBLE_EQ(capAdherence(steps), 0.75);
}

TEST(Metrics, SettleCountsIntervalsAfterDrop)
{
    std::vector<GovernorStep> steps(6);
    for (auto &s : steps) {
        s.cap_w = 120.0;
        s.rec.sensor_power_w = 100.0;
    }
    // Cap drops at step 3; power falls under it at step 5.
    steps[3].cap_w = steps[4].cap_w = steps[5].cap_w = 80.0;
    steps[3].rec.sensor_power_w = 100.0;
    steps[4].rec.sensor_power_w = 95.0;
    steps[5].rec.sensor_power_w = 75.0;
    EXPECT_DOUBLE_EQ(meanSettleIntervals(steps), 3.0);
}

/** Shared trained models for governor tests. */
struct Shared
{
    sim::ChipConfig cfg;
    model::TrainedModels models;

    Shared() : cfg(sim::fx8320Config())
    {
        cfg.per_cu_voltage = true; // the Sec. V-B assumption
        model::Trainer trainer(cfg, 51);
        std::vector<const wl::Combination *> training;
        for (const auto &c : wl::allCombinations())
            if (c.instances.size() == 1 && training.size() < 12)
                training.push_back(&c);
        models = trainer.trainAll(training);
    }

    static const Shared &
    get()
    {
        static const Shared s;
        return s;
    }

    /** The paper's Fig. 7 workload on four CUs, PG enabled. */
    sim::Chip
    makeLoadedChip(std::uint64_t seed) const
    {
        sim::Chip chip(cfg, seed);
        chip.setPowerGatingEnabled(true);
        chip.setJob(0, wl::Suite::byName("429.mcf").makeLoopingJob());
        chip.setJob(2, wl::Suite::byName("458.sjeng").makeLoopingJob());
        chip.setJob(4, wl::Suite::byName("416.gamess").makeLoopingJob());
        chip.setJob(6, wl::Suite::byName("swaptions").makeLoopingJob());
        return chip;
    }
};

TEST(Iterative, LowersUnderTightCap)
{
    const auto &s = Shared::get();
    auto chip = s.makeLoadedChip(1);
    IterativeCappingGovernor gov(s.cfg);
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(40, CapSchedule(55.0));
    // Eventually under the cap...
    EXPECT_LE(steps.back().rec.sensor_power_w, 57.0);
    // ...but only after several intervals (one VF step per interval).
    std::size_t settle = 0;
    for (const auto &st : steps) {
        ++settle;
        if (st.rec.sensor_power_w <= st.cap_w)
            break;
    }
    EXPECT_GT(settle, 3u);
}

TEST(Iterative, RecoversPerformanceUnderLooseCap)
{
    const auto &s = Shared::get();
    auto chip = s.makeLoadedChip(2);
    chip.setAllVf(0); // start slow
    IterativeCappingGovernor gov(s.cfg);
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(40, CapSchedule(200.0));
    // With a generous cap the governor must climb back up.
    double sum_vf = 0.0;
    for (std::size_t vf : steps.back().cu_vf)
        sum_vf += static_cast<double>(vf);
    EXPECT_GT(sum_vf, 8.0); // well above all-VF1 (sum 0)
}

TEST(PpepCapping, MeetsCapInOneStep)
{
    const auto &s = Shared::get();
    auto chip = s.makeLoadedChip(3);
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    PpepCappingGovernor gov(s.cfg, ppep);
    GovernorLoop loop(chip, gov);
    // Warm cap, then a hard drop.
    const auto steps =
        loop.run(20, CapSchedule({{0, 120.0}, {8, 55.0}}));
    // Settle within ~1 interval of the drop (paper: single step).
    EXPECT_LE(meanSettleIntervals(steps), 2.0);
    // Everything after the drop (given one interval to act) is capped.
    for (std::size_t i = 10; i < steps.size(); ++i)
        EXPECT_LE(steps[i].rec.sensor_power_w, 55.0 * 1.05)
            << "interval " << i;
}

TEST(PpepCapping, FasterThanIterative)
{
    const auto &s = Shared::get();
    const CapSchedule swing(
        {{0, 120.0}, {10, 50.0}, {30, 120.0}, {40, 50.0}});

    auto chip_i = s.makeLoadedChip(4);
    IterativeCappingGovernor it(s.cfg);
    GovernorLoop loop_i(chip_i, it);
    const auto steps_i = loop_i.run(60, swing);

    auto chip_p = s.makeLoadedChip(4);
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    PpepCappingGovernor pg(s.cfg, ppep);
    GovernorLoop loop_p(chip_p, pg);
    const auto steps_p = loop_p.run(60, swing);

    EXPECT_LT(meanSettleIntervals(steps_p),
              meanSettleIntervals(steps_i));
    EXPECT_GT(capAdherence(steps_p), capAdherence(steps_i));
}

TEST(PpepCapping, MaximisesPerformanceUnderCap)
{
    // Under a loose cap, the one-step policy should sit at (or near)
    // the top VF, not sandbag.
    const auto &s = Shared::get();
    auto chip = s.makeLoadedChip(5);
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    PpepCappingGovernor gov(s.cfg, ppep);
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(10, CapSchedule(300.0));
    for (std::size_t vf : steps.back().cu_vf)
        EXPECT_EQ(vf, s.cfg.vf_table.top());
}

TEST(PpepCapping, InfeasibleCapFallsToLowest)
{
    const auto &s = Shared::get();
    auto chip = s.makeLoadedChip(6);
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    PpepCappingGovernor gov(s.cfg, ppep);
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(6, CapSchedule(5.0)); // impossible
    for (std::size_t vf : steps.back().cu_vf)
        EXPECT_EQ(vf, 0u);
}

} // namespace
