/**
 * @file
 * Edge-case tests for the governor control loop and its metrics.
 */

#include <gtest/gtest.h>

#include "ppep/governor/governor.hpp"
#include "ppep/workloads/microbench.hpp"

namespace {

using namespace ppep::governor;
namespace sim = ppep::sim;

/** A scripted policy returning a fixed sequence of VF choices. */
class ScriptedGovernor : public Governor
{
  public:
    explicit ScriptedGovernor(std::vector<std::size_t> script)
        : script_(std::move(script))
    {
    }

    std::vector<std::size_t>
    decide(const ppep::trace::IntervalRecord &rec, double) override
    {
        const std::size_t vf =
            script_[std::min(cursor_++, script_.size() - 1)];
        return std::vector<std::size_t>(rec.cu_vf.size(), vf);
    }

    std::optional<sim::VfState>
    decideNb() override
    {
        return nb_;
    }

    std::string name() const override { return "scripted"; }

    std::optional<sim::VfState> nb_;

  private:
    std::vector<std::size_t> script_;
    std::size_t cursor_ = 0;
};

TEST(GovernorLoop, AppliesDecisionsNextInterval)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    ScriptedGovernor gov({2, 0, 4});
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(4, CapSchedule::unlimited());
    // Interval 0 ran at the chip's default (top); decisions apply to
    // the following interval.
    EXPECT_EQ(steps[0].cu_vf[0], 4u);
    EXPECT_EQ(steps[1].cu_vf[0], 2u);
    EXPECT_EQ(steps[2].cu_vf[0], 0u);
    EXPECT_EQ(steps[3].cu_vf[0], 4u);
}

TEST(GovernorLoop, AppliesNbDecision)
{
    const auto cfg = sim::fx8320Config();
    sim::Chip chip(cfg, 1);
    ScriptedGovernor gov({4});
    gov.nb_ = cfg.nb.vf_lo;
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(2, CapSchedule::unlimited());
    // First interval still ran on the stock NB; second on the low one.
    EXPECT_DOUBLE_EQ(steps[0].rec.nb_vf.freq_ghz, 2.2);
    EXPECT_DOUBLE_EQ(steps[1].rec.nb_vf.freq_ghz, 1.1);
}

TEST(GovernorLoop, NulloptLeavesNbUntouched)
{
    const auto cfg = sim::fx8320Config();
    sim::Chip chip(cfg, 1);
    chip.setNbVf(cfg.nb.vf_lo);
    ScriptedGovernor gov({4});
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(2, CapSchedule::unlimited());
    EXPECT_DOUBLE_EQ(steps[1].rec.nb_vf.freq_ghz, 1.1);
}

TEST(Metrics, AdherenceOfEmptyTraceIsZero)
{
    EXPECT_DOUBLE_EQ(capAdherence({}), 0.0);
}

TEST(Metrics, SettleWithNoCapDropsIsZero)
{
    std::vector<GovernorStep> steps(5);
    for (auto &s : steps) {
        s.cap_w = 100.0;
        s.rec.sensor_power_w = 120.0; // always violating, but no drop
    }
    EXPECT_DOUBLE_EQ(meanSettleIntervals(steps), 0.0);
}

TEST(Metrics, SettleCountsToTraceEndWhenNeverRecovering)
{
    std::vector<GovernorStep> steps(6);
    for (std::size_t i = 0; i < steps.size(); ++i) {
        steps[i].cap_w = i < 3 ? 100.0 : 50.0;
        steps[i].rec.sensor_power_w = 90.0; // never under 50
    }
    // Drop at index 3; power never recovers in the remaining 3 steps.
    EXPECT_DOUBLE_EQ(meanSettleIntervals(steps), 3.0);
}

TEST(Metrics, MultipleDropsAveraged)
{
    std::vector<GovernorStep> steps(8);
    for (auto &s : steps) {
        s.cap_w = 100.0;
        s.rec.sensor_power_w = 90.0;
    }
    // Drop 1 at i=2, recovers immediately (settle 1).
    steps[2].cap_w = steps[3].cap_w = 80.0;
    steps[2].rec.sensor_power_w = 75.0;
    steps[3].rec.sensor_power_w = 75.0;
    // Back up at i=4, drop 2 at i=5, recovers at i=7 (settle 3).
    steps[5].cap_w = steps[6].cap_w = steps[7].cap_w = 60.0;
    steps[5].rec.sensor_power_w = 90.0;
    steps[6].rec.sensor_power_w = 90.0;
    steps[7].rec.sensor_power_w = 55.0;
    EXPECT_DOUBLE_EQ(meanSettleIntervals(steps), 2.0);
}

TEST(MetricsDeath, WrongCuCountCaught)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    class BadGovernor : public Governor
    {
        std::vector<std::size_t>
        decide(const ppep::trace::IntervalRecord &, double) override
        {
            return {1}; // wrong width
        }
        std::string name() const override { return "bad"; }
    } gov;
    GovernorLoop loop(chip, gov);
    EXPECT_DEATH(loop.run(1, CapSchedule::unlimited()),
                 "wrong CU count");
}

} // namespace
