/**
 * @file
 * Unit tests for the validation helpers (the aggregate() reduction all
 * figure benches rely on), independent of any simulation.
 */

#include <gtest/gtest.h>

#include "ppep/model/validation.hpp"

namespace {

using namespace ppep::model;
namespace wl = ppep::workloads;

/** Hand-built combos spanning two suites. */
struct Fixture
{
    wl::Combination spec_a, spec_b, npb_a;
    std::vector<ComboError> rows;

    Fixture()
    {
        spec_a.name = "a";
        spec_a.suite = wl::SuiteId::Spec;
        spec_b.name = "b";
        spec_b.suite = wl::SuiteId::Spec;
        npb_a.name = "c";
        npb_a.suite = wl::SuiteId::Npb;
        rows = {
            {&spec_a, 0, 0.10, 0.04},
            {&spec_b, 0, 0.20, 0.06},
            {&npb_a, 0, 0.40, 0.10},
        };
    }
};

TEST(Aggregate, AllRowsMeanAndCount)
{
    Fixture f;
    const auto agg = aggregate(
        f.rows, [](const ComboError &e) { return e.aae_dynamic; });
    EXPECT_EQ(agg.count, 3u);
    EXPECT_NEAR(agg.mean, (0.10 + 0.20 + 0.40) / 3.0, 1e-12);
}

TEST(Aggregate, SuiteFilterRestrictsRows)
{
    Fixture f;
    const auto spec = wl::SuiteId::Spec;
    const auto agg = aggregate(
        f.rows, [](const ComboError &e) { return e.aae_dynamic; },
        &spec);
    EXPECT_EQ(agg.count, 2u);
    EXPECT_NEAR(agg.mean, 0.15, 1e-12);
}

TEST(Aggregate, PopulationStddev)
{
    Fixture f;
    const auto spec = wl::SuiteId::Spec;
    const auto agg = aggregate(
        f.rows, [](const ComboError &e) { return e.aae_dynamic; },
        &spec);
    // Values {0.10, 0.20}: population sd = 0.05.
    EXPECT_NEAR(agg.stddev, 0.05, 1e-12);
}

TEST(Aggregate, EmptyFilterYieldsZeroCount)
{
    Fixture f;
    const auto parsec = wl::SuiteId::Parsec;
    const auto agg = aggregate(
        f.rows, [](const ComboError &e) { return e.aae_dynamic; },
        &parsec);
    EXPECT_EQ(agg.count, 0u);
    EXPECT_DOUBLE_EQ(agg.mean, 0.0);
    EXPECT_DOUBLE_EQ(agg.stddev, 0.0);
}

TEST(Aggregate, MetricSelectsField)
{
    Fixture f;
    const auto chip = aggregate(
        f.rows, [](const ComboError &e) { return e.aae_chip; });
    EXPECT_NEAR(chip.mean, (0.04 + 0.06 + 0.10) / 3.0, 1e-12);
}

TEST(Aggregate, WorksOnCrossVfRows)
{
    wl::Combination c;
    c.suite = wl::SuiteId::Spec;
    std::vector<CrossVfError> rows = {
        {&c, 4, 0, 0.08, 0.03},
        {&c, 0, 4, 0.12, 0.05},
    };
    const auto agg = aggregate(
        rows, [](const CrossVfError &e) { return e.err_chip; });
    EXPECT_NEAR(agg.mean, 0.04, 1e-12);
}

TEST(Aggregate, WorksOnEnergyRows)
{
    wl::Combination c;
    c.suite = wl::SuiteId::Parsec;
    std::vector<EnergyError> rows = {
        {&c, 4, 0.03, 0.07},
        {&c, 4, 0.05, 0.09},
    };
    const auto ppep_agg = aggregate(
        rows, [](const EnergyError &e) { return e.aae_ppep; });
    const auto gg_agg = aggregate(
        rows, [](const EnergyError &e) { return e.aae_gg; });
    EXPECT_NEAR(ppep_agg.mean, 0.04, 1e-12);
    EXPECT_NEAR(gg_agg.mean, 0.08, 1e-12);
}

} // namespace
