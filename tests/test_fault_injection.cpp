/**
 * @file
 * Deterministic fault-injection soak: a hardened Session governed for
 * thousands of intervals under an aggressive fault plan must never
 * surface a non-finite observable, must honour the degraded-mode cap
 * discipline, must replay bit-identically from the same seeds, and must
 * both demote and re-promote along the way.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "ppep/governor/iterative_capping.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;

const std::vector<std::string> kMix = {"429.mcf", "458.sjeng",
                                       "416.gamess", "swaptions"};

/** Captures the per-interval degraded flag and fault-event count. */
class FlagSink : public runtime::TelemetrySink
{
  public:
    std::vector<bool> degraded;
    std::vector<std::size_t> fault_events;
    std::vector<double> predicted_w;

    void
    onInterval(const runtime::IntervalTelemetry &t) override
    {
        degraded.push_back(t.degraded);
        fault_events.push_back(t.health ? t.health->faultEvents() : 0);
        predicted_w.push_back(t.predicted_power_w);
    }
};

void
expectFiniteRecord(const trace::IntervalRecord &rec, std::size_t i)
{
    EXPECT_TRUE(std::isfinite(rec.sensor_power_w)) << "interval " << i;
    EXPECT_TRUE(std::isfinite(rec.diode_temp_k)) << "interval " << i;
    EXPECT_GT(rec.duration_s, 0.0) << "interval " << i;
    for (const auto &counts : rec.pmc)
        for (double v : counts) {
            ASSERT_TRUE(std::isfinite(v)) << "interval " << i;
            ASSERT_GE(v, 0.0) << "interval " << i;
        }
}

// The tentpole acceptance soak: >= 10k governed intervals under a plan
// that exercises every fault mechanism at once. ~33 min of simulated
// time; the loop itself is the test, the assertions run per interval.
TEST(FaultSoak, TenThousandIntervalsStaySane)
{
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;
    governor::IterativeCappingGovernor reactive(cfg);
    FlagSink flags;

    const auto plan = sim::FaultPlan::parse(
        "msr=0.08,wrap=30,saturate=0.002,mux=0.02,diode_spike=0.02,"
        "diode_stuck=0.002,diode_drop=0.01,sensor_spike=0.01,"
        "sensor_drop=0.02,vf_reject=0.03,vf_delay=0.03,jitter=0.1");
    auto session = runtime::Session::builder(cfg)
                       .seed(99)
                       .onePerCu(kMix)
                       .governor(reactive)
                       .schedule(governor::CapSchedule(
                           {{0, 110.0}, {3000, 55.0}, {6000, 110.0}}))
                       .faults(plan)
                       .sink(flags)
                       .build();

    const std::size_t n = 10000;
    const auto steps = session.run(n);
    ASSERT_EQ(steps.size(), n);
    const std::size_t top = cfg.vf_table.size() - 1;

    for (std::size_t i = 0; i < n; ++i) {
        expectFiniteRecord(steps[i].rec, i);
        // Predictions surfaced to telemetry are NaN (non-predictive
        // policy / degraded mode) or finite — never infinite.
        ASSERT_FALSE(std::isinf(flags.predicted_w[i]));
        // A degraded decision never selects boost for the next
        // interval (no VF faults can raise a request, only drop/delay
        // a lower one, so the applied state stays in the table).
        if (i + 1 < n && flags.degraded[i]) {
            for (std::size_t v : steps[i + 1].cu_vf)
                ASSERT_LE(v, top) << "interval " << i;
        }
    }

    // The plan is aggressive enough that the run visits the degraded
    // state and clean stretches long enough to leave it — both
    // transitions must fire, repeatedly.
    const auto *mon = session.healthMonitor();
    ASSERT_NE(mon, nullptr);
    EXPECT_EQ(mon->intervalsObserved(), n);
    EXPECT_GT(mon->demotions(), 3u);
    EXPECT_GT(mon->repromotions(), 3u);
    EXPECT_GT(session.degradedGovernor()->degradedIntervals(), 0u);

    // Every mechanism in the plan actually fired.
    const auto &injected = session.sampler()->lastHealth().injected;
    EXPECT_GT(injected.msr_read_failures, 0u);
    EXPECT_GT(injected.pmc_slot_saturations, 0u);
    EXPECT_GT(injected.mux_dropped_ticks, 0u);
    EXPECT_GT(injected.diode_spikes, 0u);
    EXPECT_GT(injected.sensor_dropouts, 0u);
    EXPECT_GT(injected.vf_rejects, 0u);
    EXPECT_GT(injected.vf_delays, 0u);
    EXPECT_GT(injected.jittered_intervals, 0u);
    EXPECT_GT(session.sampler()->lastHealth().pmc_wrap_events, 0u);
}

// Degraded-mode cap discipline, provable interval by interval: with no
// VF-actuation faults in the plan, the applied VF equals the decision,
// so the safe policy's hold/step-down contract is directly checkable
// against the trace.
TEST(FaultSoak, DegradedDecisionsHoldOrStepDown)
{
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;
    governor::IterativeCappingGovernor reactive(cfg);
    FlagSink flags;

    const auto plan = sim::FaultPlan::parse(
        "msr=0.15,wrap=48,saturate=0.01,sensor_drop=0.05");
    const double cap = 70.0;
    auto session = runtime::Session::builder(cfg)
                       .seed(7)
                       .onePerCu(kMix)
                       .governor(reactive)
                       .schedule(governor::CapSchedule(cap))
                       .faults(plan)
                       .sink(flags)
                       .build();

    const std::size_t n = 2000;
    const auto steps = session.run(n);
    const std::size_t top = cfg.vf_table.size() - 1;
    const auto &guard =
        session.degradedGovernor()->safePolicy().cap_guard;

    std::size_t degraded_checked = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
        if (!flags.degraded[i])
            continue;
        ++degraded_checked;
        const bool near_cap =
            steps[i].rec.sensor_power_w > cap * (1.0 - guard);
        for (std::size_t cu = 0; cu < cfg.n_cus; ++cu) {
            const std::size_t held =
                std::min(steps[i].cu_vf[cu], top);
            const std::size_t expect =
                near_cap ? (held > 0 ? held - 1 : 0) : held;
            ASSERT_EQ(steps[i + 1].cu_vf[cu], expect)
                << "interval " << i << " cu " << cu;
        }
    }
    EXPECT_GT(degraded_checked, 0u);
}

// Determinism: the full hardened stack (fault stream, sampler, health
// state machine, degraded decisions) replays bit-identically from the
// same seeds.
TEST(FaultSoak, IdenticalSeedsReplayBitIdentically)
{
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;
    const auto plan = sim::FaultPlan::parse(
        "msr=0.1,wrap=30,saturate=0.005,sensor_drop=0.03,"
        "vf_reject=0.05,jitter=0.15");

    auto once = [&](std::vector<bool> &degraded) {
        governor::IterativeCappingGovernor reactive(cfg);
        FlagSink flags;
        auto session = runtime::Session::builder(cfg)
                           .seed(42)
                           .onePerCu(kMix)
                           .governor(reactive)
                           .schedule(governor::CapSchedule(
                               {{0, 100.0}, {150, 60.0}}))
                           .faults(plan)
                           .faultSeed(2024)
                           .sink(flags)
                           .build();
        auto steps = session.run(300);
        degraded = flags.degraded;
        return steps;
    };

    std::vector<bool> da, db;
    const auto sa = once(da);
    const auto sb = once(db);
    ASSERT_EQ(sa.size(), sb.size());
    EXPECT_EQ(da, db);
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].cu_vf, sb[i].cu_vf) << "interval " << i;
        EXPECT_EQ(sa[i].rec.sensor_power_w, sb[i].rec.sensor_power_w)
            << "interval " << i;
        EXPECT_EQ(sa[i].rec.duration_s, sb[i].rec.duration_s)
            << "interval " << i;
    }
}

// The divergence-EWMA demotion path: in-window sensor spikes pass every
// per-sample guard (they are physically plausible readings), so the
// only defense is the predicted-vs-measured divergence tracked by the
// HealthMonitor against the PPEP model's forecasts.
TEST(FaultSoak, ModelDivergenceDemotesAPredictiveGovernor)
{
    auto cfg = sim::fx8320Config();
    cfg.per_cu_voltage = true;
    model::TrainedModels models = [&cfg] {
        model::Trainer trainer(cfg, 33);
        std::vector<const workloads::Combination *> training;
        for (const auto &c : workloads::allCombinations())
            if (c.instances.size() == 1 && training.size() < 10)
                training.push_back(&c);
        return trainer.trainAll(training);
    }();

    FlagSink flags;
    auto session =
        runtime::Session::builder(cfg)
            .seed(15)
            .onePerCu(kMix)
            .models(std::move(models))
            .governor(runtime::cappingGovernor())
            .schedule(governor::CapSchedule(90.0))
            .faults(sim::FaultPlan::parse(
                "sensor_spike=0.5,sensor_spike_w=400"))
            .sink(flags)
            .build();
    EXPECT_NE(session.policy().name().find("degraded-mode("),
              std::string::npos);

    session.run(60);
    const auto *mon = session.healthMonitor();
    // The spikes are accepted samples (inside the plausibility window),
    // so fault events stay rare; the demotion must have come from the
    // divergence EWMA.
    EXPECT_GE(mon->demotions(), 1u);
    EXPECT_GT(mon->divergenceEwma(),
              mon->policy().clean_divergence_w);
    EXPECT_GT(session.degradedGovernor()->degradedIntervals(), 0u);
}

} // namespace
