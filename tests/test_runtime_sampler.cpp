/**
 * @file
 * Tests for the hardened interval acquisition path (runtime::Sampler):
 * bit-identity with trace::Collector on clean hardware, per-sample
 * sensor/diode guards, bounded PMC retry with window normalisation,
 * plausibility rejection of corrupted counter sets, and last-good
 * substitution under the staleness budget.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/runtime/sampler.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::Sampler;
using runtime::SamplerPolicy;
using sim::FaultPlan;

constexpr std::uint64_t kSeed = 7;

void
makeBusy(sim::Chip &chip)
{
    workloads::launch(chip, workloads::replicate("EP", 4), true);
}

// --- bit-identity on clean hardware -------------------------------------

TEST(Sampler, CleanChipMatchesCollectorBitForBit)
{
    // The hardened path must cost nothing in fidelity: on a faultless
    // chip every field of its records equals the Collector's exactly,
    // down to the floating-point bit pattern.
    sim::Chip a(sim::fx8320Config(), kSeed);
    sim::Chip b(sim::fx8320Config(), kSeed);
    makeBusy(a);
    makeBusy(b);
    trace::Collector col(a);
    Sampler sampler(b);

    for (int i = 0; i < 8; ++i) {
        const auto ra = col.collectInterval();
        const auto rb = sampler.collectInterval();
        EXPECT_EQ(ra.duration_s, rb.duration_s);
        EXPECT_EQ(ra.sensor_power_w, rb.sensor_power_w);
        EXPECT_EQ(ra.diode_temp_k, rb.diode_temp_k);
        EXPECT_EQ(ra.true_power_w, rb.true_power_w);
        EXPECT_EQ(ra.true_dynamic_w, rb.true_dynamic_w);
        EXPECT_EQ(ra.true_idle_w, rb.true_idle_w);
        EXPECT_EQ(ra.true_nb_power_w, rb.true_nb_power_w);
        EXPECT_EQ(ra.true_temp_k, rb.true_temp_k);
        EXPECT_EQ(ra.nb_utilization, rb.nb_utilization);
        EXPECT_EQ(ra.busy_cores, rb.busy_cores);
        EXPECT_EQ(ra.cu_vf, rb.cu_vf);
        ASSERT_EQ(ra.pmc.size(), rb.pmc.size());
        for (std::size_t c = 0; c < ra.pmc.size(); ++c)
            for (std::size_t e = 0; e < sim::kNumEvents; ++e) {
                EXPECT_EQ(ra.pmc[c][e], rb.pmc[c][e]);
                EXPECT_EQ(ra.oracle[c][e], rb.oracle[c][e]);
            }
        EXPECT_EQ(sampler.lastHealth().faultEvents(), 0u);
    }
    EXPECT_EQ(sampler.lastHealth().total_fault_events, 0u);
}

// --- sensor / diode guards ----------------------------------------------

TEST(Sampler, SensorDropoutsAreRejectedNotAveraged)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    chip.setFaultPlan(FaultPlan::parse("sensor_drop=0.4"), 11);
    Sampler sampler(chip);
    bool saw_reject = false;
    for (int i = 0; i < 10; ++i) {
        const auto rec = sampler.collectInterval();
        EXPECT_TRUE(std::isfinite(rec.sensor_power_w));
        EXPECT_GE(rec.sensor_power_w, 0.0);
        saw_reject |= sampler.lastHealth().sensor_rejects > 0;
    }
    EXPECT_TRUE(saw_reject);
}

TEST(Sampler, FullyDroppedSensorSubstitutesLastGoodInterval)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    Sampler sampler(chip);
    const auto clean = sampler.collectInterval(); // primes last-good

    chip.setFaultPlan(FaultPlan::parse("sensor_drop=1"), 11);
    const auto faulted = sampler.collectInterval();
    EXPECT_EQ(sampler.lastHealth().sensor_rejects,
              sampler.lastHealth().ticks);
    EXPECT_EQ(faulted.sensor_power_w, clean.sensor_power_w);
}

TEST(Sampler, DiodeSpikesOutsideWindowAreRejected)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    // 300 K spikes throw the reading far outside [min_temp, max_temp].
    chip.setFaultPlan(
        FaultPlan::parse("diode_spike=0.5,diode_spike_k=300"), 11);
    Sampler sampler(chip);
    bool saw_reject = false;
    for (int i = 0; i < 10; ++i) {
        const auto rec = sampler.collectInterval();
        EXPECT_GE(rec.diode_temp_k, sampler.policy().min_temp_k);
        EXPECT_LE(rec.diode_temp_k, sampler.policy().max_temp_k);
        saw_reject |= sampler.lastHealth().diode_rejects > 0;
    }
    EXPECT_TRUE(saw_reject);
}

// --- PMC retry, rejection, substitution ---------------------------------

TEST(Sampler, PersistentMsrFailureRetriesThenSubstitutes)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    Sampler sampler(chip);
    const std::size_t n_cores = chip.config().coreCount();
    const auto clean = sampler.collectInterval(); // primes last-good

    chip.setFaultPlan(FaultPlan::parse("msr=1"), 11);
    const auto rec = sampler.collectInterval();
    const auto &h = sampler.lastHealth();
    // Every core exhausted its retries + 1 attempts.
    EXPECT_EQ(h.msr_retries,
              n_cores * (sampler.policy().max_read_retries + 1));
    EXPECT_EQ(h.msr_failed_cores, n_cores);
    EXPECT_EQ(h.substituted_cores, n_cores);
    EXPECT_EQ(h.zeroed_cores, 0u);
    for (std::size_t c = 0; c < n_cores; ++c)
        for (std::size_t e = 0; e < sim::kNumEvents; ++e)
            EXPECT_EQ(rec.pmc[c][e], clean.pmc[c][e]);
}

TEST(Sampler, StalenessBudgetExhaustionZeroesTheCore)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    Sampler sampler(chip);
    const std::size_t n_cores = chip.config().coreCount();
    sampler.collectInterval(); // primes last-good

    chip.setFaultPlan(FaultPlan::parse("msr=1"), 11);
    const std::size_t budget = sampler.policy().staleness_budget;
    for (std::size_t i = 0; i < budget; ++i) {
        sampler.collectInterval();
        EXPECT_EQ(sampler.lastHealth().substituted_cores, n_cores)
            << "interval " << i;
        EXPECT_EQ(sampler.lastHealth().zeroed_cores, 0u);
    }
    // Budget spent: the defined sentinel is all-zero counts, never a
    // stale lie older than the budget.
    const auto rec = sampler.collectInterval();
    EXPECT_EQ(sampler.lastHealth().zeroed_cores, n_cores);
    EXPECT_EQ(sampler.lastHealth().substituted_cores, 0u);
    for (std::size_t c = 0; c < n_cores; ++c)
        for (std::size_t e = 0; e < sim::kNumEvents; ++e)
            EXPECT_EQ(rec.pmc[c][e], 0.0);
}

TEST(Sampler, LateReadNormalisesTheLongWindow)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    Sampler sampler(chip);
    const auto clean = sampler.collectInterval();

    // One interval of total read failure leaves the multiplexer
    // accumulating...
    chip.setFaultPlan(FaultPlan::parse("msr=1"), 11);
    sampler.collectInterval();
    ASSERT_GT(sampler.lastHealth().msr_failed_cores, 0u);

    // ...so the next successful read covers a two-interval window and
    // must be scaled back to one interval's worth of counts.
    chip.setFaultPlan(FaultPlan{}, 11);
    const auto rec = sampler.collectInterval();
    EXPECT_EQ(sampler.lastHealth().pmc_rejected_cores, 0u);
    EXPECT_EQ(sampler.lastHealth().substituted_cores, 0u);
    const auto cyc = sim::eventIndex(sim::Event::ClocksNotHalted);
    std::size_t busy_checked = 0;
    for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
        if (clean.pmc[c][cyc] == 0.0)
            continue; // core idle in the clean interval too
        ++busy_checked;
        // Within 2x of a clean interval (the even-rate assumption is
        // approximate), not the ~2x inflation an unscaled window shows.
        EXPECT_GT(rec.pmc[c][cyc], 0.25 * clean.pmc[c][cyc]);
        EXPECT_LT(rec.pmc[c][cyc], 1.6 * clean.pmc[c][cyc]);
    }
    EXPECT_GT(busy_checked, 0u);
}

TEST(Sampler, SaturatedCountersAreRejectedAsImplausible)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    // Full-scale 48-bit saturation every core-tick: the harvested
    // deltas are ~2.8e14, far beyond any physical event rate.
    chip.setFaultPlan(FaultPlan::parse("wrap=48,saturate=1"), 11);
    Sampler sampler(chip);
    const auto rec = sampler.collectInterval();
    const auto &h = sampler.lastHealth();
    const std::size_t n_cores = chip.config().coreCount();
    EXPECT_EQ(h.pmc_rejected_cores, n_cores);
    EXPECT_EQ(h.substituted_cores, n_cores);
    // The corrupt counts never reach the record.
    const double ceiling = 1e12;
    for (const auto &counts : rec.pmc)
        for (double v : counts)
            EXPECT_LT(v, ceiling);
}

// --- interval timing -----------------------------------------------------

TEST(Sampler, JitteredIntervalsReportTrueDuration)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    chip.setFaultPlan(FaultPlan::parse("jitter=1,jitter_max=2"), 11);
    Sampler sampler(chip);
    const auto &cfg = chip.config();
    bool saw_jitter = false;
    for (int i = 0; i < 20; ++i) {
        const auto rec = sampler.collectInterval();
        const auto &h = sampler.lastHealth();
        // Rate math downstream depends on duration matching the ticks
        // that actually ran.
        EXPECT_EQ(rec.duration_s,
                  cfg.tick_s * static_cast<double>(h.ticks));
        if (h.ticks != cfg.ticks_per_interval) {
            EXPECT_TRUE(h.timing_overrun);
            saw_jitter = true;
        }
    }
    EXPECT_TRUE(saw_jitter);
}

// --- cumulative accounting ----------------------------------------------

TEST(Sampler, CumulativeTalliesCarryAcrossIntervals)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    makeBusy(chip);
    chip.setFaultPlan(FaultPlan::parse("sensor_drop=0.3,msr=0.2"), 11);
    Sampler sampler(chip);
    std::size_t running = 0, last_total = 0;
    for (int i = 0; i < 15; ++i) {
        sampler.collectInterval();
        const auto &h = sampler.lastHealth();
        EXPECT_EQ(h.total_fault_events, running);
        running += h.faultEvents();
        EXPECT_GE(h.injected.total(), last_total);
        last_total = h.injected.total();
    }
    EXPECT_GT(running, 0u);
    EXPECT_GT(last_total, 0u);
}

TEST(SamplerDeath, DegenerateBudgetOrWindowsAreFatal)
{
    sim::Chip chip(sim::fx8320Config(), kSeed);
    SamplerPolicy p;
    p.staleness_budget = 0;
    EXPECT_DEATH(Sampler(chip, p), "staleness budget");
    SamplerPolicy q;
    q.min_cpi = q.max_cpi;
    EXPECT_DEATH(Sampler(chip, q), "non-empty");
}

} // namespace
