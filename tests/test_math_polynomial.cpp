/**
 * @file
 * Unit tests for polynomial fitting/evaluation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ppep/math/polynomial.hpp"

namespace {

using ppep::math::Polynomial;

TEST(Polynomial, EvaluateKnown)
{
    // p(x) = 1 + 2x + 3x^2
    const Polynomial p({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(p(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p(1.0), 6.0);
    EXPECT_DOUBLE_EQ(p(2.0), 17.0);
    EXPECT_DOUBLE_EQ(p(-1.0), 2.0);
}

TEST(Polynomial, ZeroPolynomial)
{
    const Polynomial p;
    EXPECT_DOUBLE_EQ(p(123.0), 0.0);
    EXPECT_EQ(p.degree(), 0);
}

TEST(Polynomial, DegreeIgnoresTrailingZeros)
{
    const Polynomial p({1.0, 2.0, 0.0});
    EXPECT_EQ(p.degree(), 1);
}

TEST(Polynomial, FitExactLine)
{
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
    const std::vector<double> ys{5.0, 7.0, 9.0, 11.0};
    const auto p = Polynomial::fit(xs, ys, 1);
    EXPECT_NEAR(p.coefficients()[0], 5.0, 1e-10);
    EXPECT_NEAR(p.coefficients()[1], 2.0, 1e-10);
}

TEST(Polynomial, FitExactCubic)
{
    // y = 2 - x + 0.5 x^2 + 0.25 x^3 sampled at 6 points.
    const Polynomial truth({2.0, -1.0, 0.5, 0.25});
    std::vector<double> xs, ys;
    for (int i = 0; i < 6; ++i) {
        xs.push_back(0.5 * i);
        ys.push_back(truth(xs.back()));
    }
    const auto p = Polynomial::fit(xs, ys, 3);
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(p.coefficients()[i], truth.coefficients()[i], 1e-8);
}

TEST(Polynomial, FitOverdeterminedAverages)
{
    // Constant fit through scattered points = their mean.
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys{10.0, 12.0, 14.0, 16.0};
    const auto p = Polynomial::fit(xs, ys, 0);
    EXPECT_NEAR(p.coefficients()[0], 13.0, 1e-10);
}

TEST(Polynomial, FitInterpolatesWithinRange)
{
    // Degree-3 fit of the idle-power-style shape must interpolate
    // smoothly between sample voltages.
    const std::vector<double> volts{0.888, 1.008, 1.128, 1.242, 1.320};
    std::vector<double> power;
    for (double v : volts)
        power.push_back(3.0 * v * v * v + 2.0 * v);
    const auto p = Polynomial::fit(volts, power, 3);
    // Query midway between table points.
    const double v_mid = 1.07;
    EXPECT_NEAR(p(v_mid), 3.0 * v_mid * v_mid * v_mid + 2.0 * v_mid,
                1e-6);
}

TEST(Polynomial, DerivativeOfCubic)
{
    const Polynomial p({1.0, 2.0, 3.0, 4.0});
    const auto d = p.derivative();
    // d(x) = 2 + 6x + 12x^2
    EXPECT_DOUBLE_EQ(d(0.0), 2.0);
    EXPECT_DOUBLE_EQ(d(1.0), 20.0);
    EXPECT_EQ(d.degree(), 2);
}

TEST(Polynomial, DerivativeOfConstantIsZero)
{
    const Polynomial p({7.0});
    const auto d = p.derivative();
    EXPECT_DOUBLE_EQ(d(100.0), 0.0);
}

// Property sweep over degrees: fitting with the true degree recovers the
// generating polynomial.
class FitSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FitSweep, RecoversGeneratingPolynomial)
{
    const int degree = GetParam();
    std::vector<double> truth;
    for (int i = 0; i <= degree; ++i)
        truth.push_back(1.0 / (1.0 + i));
    const Polynomial gen(truth);
    std::vector<double> xs, ys;
    for (int i = 0; i <= degree + 4; ++i) {
        xs.push_back(-1.0 + 0.4 * i);
        ys.push_back(gen(xs.back()));
    }
    const auto p = Polynomial::fit(xs, ys, degree);
    for (int i = 0; i <= degree; ++i)
        EXPECT_NEAR(p.coefficients()[static_cast<std::size_t>(i)],
                    truth[static_cast<std::size_t>(i)], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Degrees, FitSweep, ::testing::Values(0, 1, 2, 3, 4));

} // namespace
