/**
 * @file
 * Arbitration soak: a heterogeneous, fault-injected fleet governed
 * under a time-varying global budget for 10k intervals, with an
 * ArbiterObserver re-checking the two load-bearing invariants on every
 * single interval:
 *
 *   - the installed caps never sum above the budget they target
 *     (beyond FP tolerance), across budget drops, recoveries, tier
 *     limits, and drifting measured power;
 *   - the violation counter latches exactly when measured fleet power
 *     overshoots the governing budget — ground truth recomputed
 *     independently from the observer's own view.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <vector>

#include "ppep/runtime/arbiter.hpp"
#include "ppep/runtime/fleet.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::ArbiterSpec;
using runtime::Fleet;
using runtime::FleetSessionSpec;
using runtime::FleetSpec;
using ppep::governor::CapSchedule;

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

TEST(ArbiterSoak, CapsHoldTheBudgetForTenThousandIntervals)
{
    constexpr std::size_t kIntervals = 10000;

    FleetSpec spec;
    spec.cfg = sim::fx8320Config();
    spec.training_seed = 91;
    spec.training_combos = smallTrainingSet();
    spec.store.emplace(::testing::TempDir() + "ppep_arbsoak_cache_" +
                       std::to_string(::getpid()));
    spec.warmup = 1;
    spec.intervals = kIntervals;

    // Six sessions over two platforms; half of them drift under a
    // fault plan, so measured power decouples from the (stale) model
    // predictions the arbiter allocates from — exactly the regime
    // where a buggy arbiter would overshoot or latch spuriously.
    static const std::vector<std::string> programs = {"EP", "CG",
                                                      "458.sjeng"};
    sim::FaultPlan plan;
    plan.power_drift_bias = 2e-4;
    plan.drift_clamp = 0.3;
    for (std::size_t i = 0; i < 6; ++i) {
        FleetSessionSpec ss;
        ss.seed = 41 + i;
        ss.one_per_cu = {programs[i % programs.size()]};
        if (i >= 4) {
            ss.cfg = sim::phenomIIConfig();
        } else {
            ss.pg = (i % 2) == 0;
        }
        if (i % 2 == 1)
            ss.faults = plan;
        ss.priority = 1.0 + static_cast<double>(i % 3) * 0.5;
        ss.slo_floor_w = 4.0;
        spec.sessions.push_back(std::move(ss));
    }

    ArbiterSpec a;
    // Drops and recoveries across the whole run, all binding for this
    // fleet's ~150-250 W draw.
    // The tight segments sit below the fleet's ~110 W desired draw, so
    // caps genuinely bind there and the drifted sessions' overshoot
    // shows up in the fleet total instead of vanishing into the slack
    // the governors leave under their caps.
    a.budget = CapSchedule({{0, 260.0},
                            {2000, 85.0},
                            {4500, 240.0},
                            {7000, 80.0},
                            {9000, 210.0}});
    a.tiers = {{"rack0", 150.0}, {"rack1", 150.0}};

    std::size_t calls = 0;
    std::size_t true_violations = 0;
    std::size_t cap_sum_failures = 0;
    a.observer = [&](const runtime::ArbiterIntervalView &v) {
        ++calls;
        double cap_sum = 0.0;
        for (std::size_t s = 0; s < v.n_sessions; ++s)
            cap_sum += v.caps[s];
        if (cap_sum > v.next_budget_w * (1.0 + 1e-9) + 1e-6)
            ++cap_sum_failures;
        double measured = 0.0;
        for (std::size_t s = 0; s < v.n_sessions; ++s)
            measured += v.measured[s];
        // Ground truth for the latch: strictly-measured overshoot of
        // the budget that governed the just-closed interval.
        const bool overshoot = measured > v.budget_w;
        if (overshoot)
            ++true_violations;
        EXPECT_EQ(v.violation, overshoot)
            << "interval " << v.interval;
    };
    spec.arbiter = std::move(a);

    Fleet fleet(std::move(spec));
    const auto res = fleet.run(4);
    ASSERT_EQ(res.failed, 0u);
    ASSERT_TRUE(res.arbiter.active);

    EXPECT_EQ(calls, kIntervals);
    EXPECT_EQ(cap_sum_failures, 0u);
    EXPECT_EQ(res.arbiter.cap_sum_violations, 0u);
    // The report's counter is exactly the independently recomputed
    // ground truth: it latched on genuine overshoot and nothing else.
    // (With stale models under positive power drift, some overshoot is
    // genuine and expected — the counter must report it, not hide it.)
    EXPECT_EQ(res.arbiter.violation_intervals, true_violations);
    EXPECT_GT(true_violations, 0u);
    EXPECT_LT(true_violations, kIntervals);
    EXPECT_EQ(res.arbiter.intervals, kIntervals);
    EXPECT_EQ(res.arbiter.budget_drops, 2u);
    for (const auto &s : res.sessions) {
        EXPECT_TRUE(s.completed) << s.error;
        EXPECT_EQ(s.intervals, kIntervals);
    }
}

} // namespace
