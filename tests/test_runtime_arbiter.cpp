/**
 * @file
 * BudgetArbiter tests: the water-filling sweep's optimality-shaped
 * invariants on synthetic tables (priorities, SLO floors, tiers,
 * hysteresis, infeasible scaling, blind fallback), the iterative
 * baseline's reactive stepping, and the arbitrated fleet's determinism
 * contract — bit-identical digests at any thread count and under
 * record/replay, caps that never sum above the budget, and the
 * single-pass-beats-iterative settle comparison from the paper's
 * Fig. 7 at fleet scale.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <limits>
#include <vector>

#include "ppep/model/ppep.hpp"
#include "ppep/runtime/arbiter.hpp"
#include "ppep/runtime/fleet.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::ArbiterReport;
using runtime::ArbiterSpec;
using runtime::BudgetArbiter;
using runtime::Fleet;
using runtime::FleetArbiter;
using runtime::FleetSessionSpec;
using runtime::FleetSpec;
using Setup = runtime::FleetArbiter::SessionSetup;
using ppep::governor::CapSchedule;

constexpr double kHuge = 0.25 * std::numeric_limits<double>::max();

/** Single-threaded harness stand-in for the fleet's barrier completion
 *  step: claim the serial role decide() requires, then decide. */
void
decideSerial(FleetArbiter &arb, std::size_t interval)
{
    util::RoleGuard serial(runtime::kArbiterSerialRole);
    arb.decide(interval);
}

// ---------------------------------------------------------------------------
// Unit level: synthetic (power, throughput) tables fed straight into
// the arbiters, no fleet underneath.
// ---------------------------------------------------------------------------

/**
 * A strictly concave 4-state lane: hull steps cost 4, 6, 8 W with
 * marginal rates 0.2, 0.1, 0.05 Gips/W — every point is on the hull,
 * so grants are exactly predictable.
 */
std::vector<model::VfPrediction>
concaveLane(double ips_scale = 1.0)
{
    const double p[] = {10.0, 14.0, 20.0, 28.0};
    const double i[] = {1.0e9, 1.8e9, 2.4e9, 2.8e9};
    std::vector<model::VfPrediction> rows(4);
    for (std::size_t k = 0; k < 4; ++k) {
        rows[k].vf_index = k;
        rows[k].chip_power_w = p[k];
        rows[k].total_ips = i[k] * ips_scale;
    }
    return rows;
}

Setup
setupOf(double priority = 1.0, double floor_w = 0.0,
        std::size_t n_vf = 4)
{
    Setup s;
    s.priority = priority;
    s.slo_floor_w = floor_w;
    s.n_vf = n_vf;
    return s;
}

TEST(Arbiter, UnlimitedBudgetLeavesEveryLaneUncapped)
{
    ArbiterSpec spec; // unlimited
    const auto arb =
        runtime::makeArbiter(spec, {setupOf(), setupOf()});
    const auto rows = concaveLane();
    arb->gather(0, rows.data(), rows.size(), 20.0);
    arb->gather(1, rows.data(), rows.size(), 20.0);
    decideSerial(*arb, 0);
    EXPECT_GT(arb->capOf(0), kHuge);
    EXPECT_GT(arb->capOf(1), kHuge);
    EXPECT_EQ(arb->throttledOf(0), 0.0);
    EXPECT_EQ(arb->throttledOf(1), 0.0);
    EXPECT_FALSE(arb->lastViolation());
}

TEST(Arbiter, WaterFillingGrantsHighestMarginalThroughputFirst)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule(24.0);
    const auto arb =
        runtime::makeArbiter(spec, {setupOf(), setupOf()});
    const auto strong = concaveLane(1.0);
    const auto weak = concaveLane(0.9); // same watts, less ips/W
    arb->gather(0, strong.data(), strong.size(), 12.0);
    arb->gather(1, weak.data(), weak.size(), 12.0);
    decideSerial(*arb, 0);
    // Base 10 + 10; the 4 W remainder buys exactly one hull step and
    // the steeper lane outbids the scaled-down one.
    EXPECT_DOUBLE_EQ(arb->capOf(0), 14.0);
    EXPECT_DOUBLE_EQ(arb->capOf(1), 10.0);
    // Demand is the max-throughput state (28 W); throttled = denied.
    EXPECT_DOUBLE_EQ(arb->throttledOf(0), 14.0);
    EXPECT_DOUBLE_EQ(arb->throttledOf(1), 18.0);
}

TEST(Arbiter, PriorityWeightsBiasTheSweep)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule(24.0);
    const auto arb =
        runtime::makeArbiter(spec, {setupOf(1.0), setupOf(2.0)});
    const auto rows = concaveLane();
    arb->gather(0, rows.data(), rows.size(), 12.0);
    arb->gather(1, rows.data(), rows.size(), 12.0);
    decideSerial(*arb, 0);
    // Identical tables: priority alone decides who gets the one
    // affordable step.
    EXPECT_DOUBLE_EQ(arb->capOf(0), 10.0);
    EXPECT_DOUBLE_EQ(arb->capOf(1), 14.0);
}

TEST(Arbiter, SloFloorLiftsTheBaseAllocation)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule(50.0);
    const auto arb = runtime::makeArbiter(
        spec, {setupOf(1.0, 30.0), setupOf(1.0)});
    const auto rows = concaveLane();
    arb->gather(0, rows.data(), rows.size(), 12.0);
    arb->gather(1, rows.data(), rows.size(), 12.0);
    decideSerial(*arb, 0);
    EXPECT_GE(arb->capOf(0), 30.0);
    double sum = arb->capOf(0) + arb->capOf(1);
    EXPECT_LE(sum, 50.0 * (1.0 + 1e-9) + 1e-6);
}

TEST(Arbiter, InfeasibleFloorsScaleEveryCapProportionally)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule(60.0);
    const auto arb = runtime::makeArbiter(
        spec, {setupOf(1.0, 40.0), setupOf(1.0, 40.0)});
    const auto rows = concaveLane();
    arb->gather(0, rows.data(), rows.size(), 12.0);
    arb->gather(1, rows.data(), rows.size(), 12.0);
    decideSerial(*arb, 0);
    // Floors alone want 80 W against a 60 W contract: everything
    // scales by 0.75 and the interval counts as infeasible.
    EXPECT_DOUBLE_EQ(arb->capOf(0), 30.0);
    EXPECT_DOUBLE_EQ(arb->capOf(1), 30.0);
    EXPECT_EQ(arb->report().infeasible_intervals, 1u);
}

TEST(Arbiter, TierBudgetsConstrainTheirSessions)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule(100.0);
    spec.tiers = {{"rack0", 20.0}, {"rack1", 100.0}};
    auto s0 = setupOf();
    s0.tier = 0;
    auto s1 = setupOf();
    s1.tier = 1;
    const auto arb = runtime::makeArbiter(spec, {s0, s1});
    const auto rows = concaveLane();
    arb->gather(0, rows.data(), rows.size(), 12.0);
    arb->gather(1, rows.data(), rows.size(), 12.0);
    decideSerial(*arb, 0);
    // Lane 0's tier is exhausted at 20 W (base 10 + steps 4 + 6);
    // global headroom cannot leak into it, so the leftover all lands
    // on lane 1.
    EXPECT_DOUBLE_EQ(arb->capOf(0), 20.0);
    EXPECT_GT(arb->capOf(1), 28.0);
    EXPECT_LE(arb->capOf(0) + arb->capOf(1),
              100.0 * (1.0 + 1e-9) + 1e-6);
}

TEST(Arbiter, HysteresisSuppressesSmallRaisesButNeverLowering)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule({{0, 24.0}, {2, 27.0}, {3, 20.0}});
    spec.hysteresis_w = 5.0;
    const auto arb =
        runtime::makeArbiter(spec, {setupOf(), setupOf()});
    const auto strong = concaveLane(1.0);
    const auto weak = concaveLane(0.9);
    const auto feed = [&] {
        arb->gather(0, strong.data(), strong.size(), 11.0);
        arb->gather(1, weak.data(), weak.size(), 11.0);
    };
    feed();
    decideSerial(*arb, 0); // next budget 24 -> caps {14, 10}
    EXPECT_DOUBLE_EQ(arb->capOf(0), 14.0);
    EXPECT_DOUBLE_EQ(arb->capOf(1), 10.0);
    feed();
    decideSerial(*arb, 1); // next budget 27: +1.5 W raises, under threshold
    EXPECT_DOUBLE_EQ(arb->capOf(0), 14.0);
    EXPECT_DOUBLE_EQ(arb->capOf(1), 10.0);
    feed();
    decideSerial(*arb, 2); // next budget 20: lowering always applies
    EXPECT_DOUBLE_EQ(arb->capOf(0), 10.0);
    EXPECT_DOUBLE_EQ(arb->capOf(1), 10.0);
}

TEST(Arbiter, BlindLanesFallBackToPriorityShare)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule(60.0);
    const auto arb = runtime::makeArbiter(
        spec, {setupOf(1.0), setupOf(2.0), setupOf(0.0)});
    const auto rows = concaveLane();
    arb->gather(0, rows.data(), rows.size(), 12.0);
    arb->gather(1, nullptr, 0, 12.0); // no exploration this interval
    arb->gather(2, nullptr, 0, 0.0);  // dead lane, priority 0
    decideSerial(*arb, 0);
    // The blind lane takes its priority-proportional share outright;
    // the dead lane gets nothing; the sighted lane sweeps the rest.
    EXPECT_DOUBLE_EQ(arb->capOf(1), 60.0 * 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(arb->capOf(2), 0.0);
    EXPECT_GE(arb->capOf(0), 10.0);
    EXPECT_LE(arb->capOf(0) + arb->capOf(1) + arb->capOf(2),
              60.0 * (1.0 + 1e-9) + 1e-6);
    // Blind lanes have no stated demand, so nothing counts throttled.
    EXPECT_EQ(arb->throttledOf(1), 0.0);
}

TEST(Arbiter, DecideIsInvariantToGatherOrder)
{
    const auto run = [](bool reversed) {
        ArbiterSpec spec;
        spec.budget = CapSchedule(47.0);
        spec.tiers = {{"a", 30.0}, {"b", 30.0}};
        const auto arb = runtime::makeArbiter(
            spec, {setupOf(1.0), setupOf(1.5), setupOf(0.5, 12.0)});
        const auto r0 = concaveLane(1.0);
        const auto r1 = concaveLane(0.8);
        const auto r2 = concaveLane(1.2);
        for (std::size_t i = 0; i < 3; ++i) {
            if (reversed) {
                arb->gather(2, r2.data(), r2.size(), 15.0);
                arb->gather(1, r1.data(), r1.size(), 14.0);
                arb->gather(0, r0.data(), r0.size(), 13.0);
            } else {
                arb->gather(0, r0.data(), r0.size(), 13.0);
                arb->gather(1, r1.data(), r1.size(), 14.0);
                arb->gather(2, r2.data(), r2.size(), 15.0);
            }
            decideSerial(*arb, i);
        }
        return std::vector<double>{arb->capOf(0), arb->capOf(1),
                                   arb->capOf(2)};
    };
    // Lanes are disjoint SoA slots: the deposit order (= worker
    // scheduling) must be invisible to the solve, bit for bit.
    EXPECT_EQ(run(false), run(true));
}

TEST(Arbiter, ViolationsLatchOnlyOnMeasuredOvershoot)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule(30.0);
    const auto arb =
        runtime::makeArbiter(spec, {setupOf(), setupOf()});
    const auto rows = concaveLane();
    arb->gather(0, rows.data(), rows.size(), 20.0);
    arb->gather(1, rows.data(), rows.size(), 20.0);
    decideSerial(*arb, 0); // measured 40 > 30: genuine overshoot
    EXPECT_TRUE(arb->lastViolation());
    arb->gather(0, rows.data(), rows.size(), 14.0);
    arb->gather(1, rows.data(), rows.size(), 14.0);
    decideSerial(*arb, 1); // measured 28 <= 30: caps alone never latch
    EXPECT_FALSE(arb->lastViolation());
    EXPECT_EQ(arb->report().violation_intervals, 1u);
}

TEST(Arbiter, IterativeBaselineStepsReactively)
{
    ArbiterSpec spec;
    spec.budget = CapSchedule(30.0);
    spec.iterative = true;
    const auto arb =
        runtime::makeArbiter(spec, {setupOf(), setupOf()});
    EXPECT_STREQ(arb->policyName(), "iterative");
    const auto rows = concaveLane();
    // Over budget: the initial proportional split (15 + 15) steps
    // down by step_w every interval the measured sum stays high.
    arb->gather(0, rows.data(), rows.size(), 20.0);
    arb->gather(1, rows.data(), rows.size(), 20.0);
    decideSerial(*arb, 0);
    EXPECT_DOUBLE_EQ(arb->capOf(0), 13.0);
    arb->gather(0, rows.data(), rows.size(), 20.0);
    arb->gather(1, rows.data(), rows.size(), 20.0);
    decideSerial(*arb, 1);
    EXPECT_DOUBLE_EQ(arb->capOf(0), 11.0);
    // Comfortably under: caps claw back up, never past the budget.
    for (std::size_t i = 2; i < 12; ++i) {
        arb->gather(0, rows.data(), rows.size(), 5.0);
        arb->gather(1, rows.data(), rows.size(), 5.0);
        decideSerial(*arb, i);
        EXPECT_LE(arb->capOf(0) + arb->capOf(1),
                  30.0 * (1.0 + 1e-9) + 1e-6) << "interval " << i;
    }
    EXPECT_GT(arb->capOf(0), 11.0);
}

TEST(Arbiter, MakeArbiterBuildsTheRequestedPolicy)
{
    ArbiterSpec spec;
    EXPECT_STREQ(runtime::makeArbiter(spec, {setupOf()})->policyName(),
                 "single-pass");
    spec.iterative = true;
    EXPECT_STREQ(runtime::makeArbiter(spec, {setupOf()})->policyName(),
                 "iterative");
}

// ---------------------------------------------------------------------------
// Fleet level: the arbitrated lockstep drive.
// ---------------------------------------------------------------------------

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

const std::string &
cacheDir()
{
    static const std::string dir = [] {
        const std::string d = ::testing::TempDir() +
                              "ppep_arbiter_cache_" +
                              std::to_string(::getpid());
        std::filesystem::remove_all(d);
        return d;
    }();
    return dir;
}

FleetSpec
baseSpec(std::size_t n_sessions, std::size_t intervals = 8)
{
    static const std::vector<std::string> programs = {"EP", "CG",
                                                      "458.sjeng"};
    FleetSpec spec;
    spec.cfg = sim::fx8320Config();
    spec.training_seed = 91;
    spec.training_combos = smallTrainingSet();
    spec.store.emplace(cacheDir());
    spec.warmup = 1;
    spec.intervals = intervals;
    for (std::size_t i = 0; i < n_sessions; ++i) {
        FleetSessionSpec ss;
        ss.seed = 7 + i;
        ss.pg = (i % 2) == 0;
        ss.one_per_cu = {programs[i % programs.size()]};
        spec.sessions.push_back(std::move(ss));
    }
    return spec;
}

/** Uncapped fleet power, for calibrating budgets that actually bind. */
double
uncappedFleetWatts(std::size_t n_sessions)
{
    auto spec = baseSpec(n_sessions);
    Fleet fleet(std::move(spec));
    const auto res = fleet.run(1);
    EXPECT_EQ(res.failed, 0u);
    return res.mean_power_w * static_cast<double>(n_sessions);
}

TEST(ArbiterFleet, BitIdenticalAcrossThreadCounts)
{
    const double total_w = uncappedFleetWatts(5);
    auto makeSpec = [&] {
        auto spec = baseSpec(5, 10);
        ArbiterSpec a;
        a.budget = CapSchedule(
            {{0, 1.1 * total_w}, {4, 0.75 * total_w}});
        a.tiers = {{"rack0", 0.7 * total_w}, {"rack1", 0.7 * total_w}};
        spec.arbiter = std::move(a);
        spec.sessions[1].priority = 2.0;
        spec.sessions[2].slo_floor_w = 8.0;
        return spec;
    };
    Fleet fleet(makeSpec());
    const auto serial = fleet.run(1);
    ASSERT_EQ(serial.failed, 0u);
    ASSERT_TRUE(serial.arbiter.active);
    EXPECT_EQ(serial.arbiter.policy, "single-pass");
    EXPECT_EQ(serial.arbiter.cap_sum_violations, 0u);
    EXPECT_EQ(serial.arbiter.intervals, 10u);

    for (std::size_t i = 1; i < serial.sessions.size(); ++i)
        EXPECT_NE(serial.sessions[i].telemetry_digest,
                  serial.sessions[0].telemetry_digest);

    for (const std::size_t threads : {2, 8}) {
        const auto parallel = fleet.run(threads);
        ASSERT_EQ(parallel.failed, 0u) << threads << " threads";
        for (std::size_t i = 0; i < serial.sessions.size(); ++i)
            EXPECT_EQ(parallel.sessions[i].telemetry_digest,
                      serial.sessions[i].telemetry_digest)
                << "session " << i << " at " << threads << " threads";
        EXPECT_EQ(parallel.arbiter.violation_intervals,
                  serial.arbiter.violation_intervals);
    }
}

TEST(ArbiterFleet, ObserverSeesEveryIntervalAndCapsHoldTheBudget)
{
    const double total_w = uncappedFleetWatts(4);
    auto spec = baseSpec(4, 10);
    ArbiterSpec a;
    a.budget =
        CapSchedule({{0, 1.1 * total_w}, {5, 0.8 * total_w}});
    std::size_t calls = 0;
    a.observer = [&](const runtime::ArbiterIntervalView &v) {
        EXPECT_EQ(v.interval, calls);
        EXPECT_EQ(v.n_sessions, 4u);
        double cap_sum = 0.0;
        for (std::size_t s = 0; s < v.n_sessions; ++s)
            cap_sum += v.caps[s];
        EXPECT_LE(cap_sum, v.next_budget_w * (1.0 + 1e-9) + 1e-6)
            << "interval " << v.interval;
        ++calls;
    };
    spec.arbiter = std::move(a);
    Fleet fleet(std::move(spec));
    const auto res = fleet.run(1);
    ASSERT_EQ(res.failed, 0u);
    EXPECT_EQ(calls, 10u);
    EXPECT_EQ(res.arbiter.cap_sum_violations, 0u);
    // Per-session allocation telemetry is populated under a finite
    // budget.
    for (const auto &s : res.sessions) {
        EXPECT_GT(s.mean_cap_w, 0.0);
        EXPECT_LT(s.final_cap_w, kHuge);
        EXPECT_GE(s.mean_throttled_w, 0.0);
    }
}

TEST(ArbiterFleet, SinglePassSettlesFasterThanIterativeBaseline)
{
    const double total_w = uncappedFleetWatts(4);
    const std::size_t intervals = 18;
    const std::size_t drop_at = 5;
    auto makeSpec = [&](bool iterative) {
        auto spec = baseSpec(4, intervals);
        ArbiterSpec a;
        a.budget = CapSchedule(
            // The calibration mean is dominated by the high-power
            // opening intervals; the fleet's steady-state draw is well
            // below it, so the drop must go deep (0.55x) to actually
            // bind post-drop.
            {{0, 1.2 * total_w}, {drop_at, 0.55 * total_w}});
        a.iterative = iterative;
        spec.arbiter = std::move(a);
        return spec;
    };
    const auto settleOf = [&](bool iterative) {
        Fleet fleet(makeSpec(iterative));
        const auto res = fleet.run(2);
        EXPECT_EQ(res.failed, 0u);
        EXPECT_EQ(res.arbiter.budget_drops, 1u);
        // A drop that never re-settled within the run counts as the
        // whole post-drop window.
        if (res.arbiter.mean_settle_intervals == 0.0)
            return static_cast<double>(intervals - drop_at);
        return res.arbiter.mean_settle_intervals;
    };
    const double single_pass = settleOf(false);
    const double iterative = settleOf(true);
    // The Fig. 7 shape at fleet scale: the predictive solve lands the
    // fleet under the lowered budget in about one interval; the
    // reactive baseline needs its step-by-step search.
    EXPECT_LE(single_pass, 2.0);
    EXPECT_GE(iterative, 3.0);
    EXPECT_GT(iterative, single_pass);
}

TEST(ArbiterFleet, RecordThenReplayReproducesArbitratedDigests)
{
    namespace fs = std::filesystem;
    const std::string path = ::testing::TempDir() +
                             "ppep_arbiter_replay_" +
                             std::to_string(::getpid()) + ".trc";
    fs::remove(path);
    const double total_w = uncappedFleetWatts(3);
    auto makeSpec = [&] {
        auto spec = baseSpec(3, 10);
        ArbiterSpec a;
        a.budget = CapSchedule(
            {{0, 1.1 * total_w}, {4, 0.8 * total_w}});
        spec.arbiter = std::move(a);
        return spec;
    };
    auto rec_spec = makeSpec();
    rec_spec.record_path = path;
    Fleet rec_fleet(std::move(rec_spec));
    const auto rec = rec_fleet.run(2);
    ASSERT_EQ(rec.failed, 0u);

    auto rep_spec = makeSpec();
    rep_spec.replay_path = path;
    Fleet rep_fleet(std::move(rep_spec));
    const auto rep = rep_fleet.run(2);
    ASSERT_EQ(rep.failed, 0u);
    for (std::size_t i = 0; i < rec.sessions.size(); ++i)
        EXPECT_EQ(rep.sessions[i].telemetry_digest,
                  rec.sessions[i].telemetry_digest)
            << "session " << i;
    EXPECT_EQ(rep.arbiter.violation_intervals,
              rec.arbiter.violation_intervals);
    fs::remove(path);
}

TEST(ArbiterFleet, TenantThrottledWattsSplitProportionally)
{
    const double total_w = uncappedFleetWatts(2);
    auto spec = baseSpec(2, 10);
    spec.sessions[0].one_per_cu.clear();
    spec.sessions[0].tenants = {
        {"alpha", {0, 1, 2, 3}, {{0, "EP", true}}},
        {"beta", {4, 5, 6, 7}, {{4, "CG", true}}},
    };
    ArbiterSpec a;
    a.budget = CapSchedule(0.7 * total_w); // binding from the start
    spec.arbiter = std::move(a);
    Fleet fleet(std::move(spec));
    const auto res = fleet.run(1);
    ASSERT_EQ(res.failed, 0u);
    const auto &s = res.sessions[0];
    ASSERT_EQ(s.summary.tenant_names.size(), 2u);
    ASSERT_EQ(s.tenant_throttled_w.size(), 2u);
    // The denied watts are attributed in proportion to each tenant's
    // attributed power and jointly account for the session's total.
    EXPECT_GE(s.tenant_throttled_w[0], 0.0);
    EXPECT_GE(s.tenant_throttled_w[1], 0.0);
    if (s.mean_throttled_w > 0.0) {
        EXPECT_NEAR(s.tenant_throttled_w[0] + s.tenant_throttled_w[1],
                    s.mean_throttled_w, 1e-9 + 1e-6 * s.mean_throttled_w);
        const double p0 = s.summary.tenant_mean_power_w[0];
        const double p1 = s.summary.tenant_mean_power_w[1];
        if (p0 > 0.0 && p1 > 0.0)
            EXPECT_NEAR(s.tenant_throttled_w[0] * p1,
                        s.tenant_throttled_w[1] * p0,
                        1e-6 * s.mean_throttled_w * (p0 + p1));
    }
}

} // namespace
