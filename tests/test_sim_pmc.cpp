/**
 * @file
 * Unit tests for the programmable counter hardware (PmcBank) and the
 * daemon-side time multiplexer (PmcMultiplexer) — the mechanism behind
 * the paper's dedup/IS/DC outliers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "ppep/sim/pmc.hpp"

namespace {

using namespace ppep::sim;

EventVector
constantCounts(double value)
{
    EventVector v{};
    for (auto &x : v)
        x = value;
    return v;
}

std::vector<Event>
allEventList()
{
    return {allEvents().begin(), allEvents().end()};
}

TEST(PmcBank, SlotsStartDisabled)
{
    PmcBank bank(6);
    EXPECT_EQ(bank.counterCount(), 6u);
    for (std::size_t s = 0; s < 6; ++s) {
        EXPECT_FALSE(bank.programmed(s).has_value());
        EXPECT_DOUBLE_EQ(bank.read(s), 0.0);
    }
}

TEST(PmcBank, DisabledSlotsDoNotCount)
{
    PmcBank bank(6);
    bank.observe(constantCounts(100.0));
    for (std::size_t s = 0; s < 6; ++s)
        EXPECT_DOUBLE_EQ(bank.read(s), 0.0);
}

TEST(PmcBank, ProgrammedSlotCountsItsEvent)
{
    PmcBank bank(6);
    bank.program(0, Event::RetiredInst);
    bank.program(1, Event::MabWaitCycles);
    EventVector counts{};
    counts[eventIndex(Event::RetiredInst)] = 42.0;
    counts[eventIndex(Event::MabWaitCycles)] = 7.0;
    bank.observe(counts);
    bank.observe(counts);
    EXPECT_DOUBLE_EQ(bank.read(0), 84.0);
    EXPECT_DOUBLE_EQ(bank.read(1), 14.0);
    EXPECT_DOUBLE_EQ(bank.read(2), 0.0);
}

TEST(PmcBank, ReprogramKeepsCountUntilWritten)
{
    PmcBank bank(2);
    bank.program(0, Event::RetiredInst);
    EventVector counts{};
    counts[eventIndex(Event::RetiredInst)] = 10.0;
    bank.observe(counts);
    bank.program(0, Event::RetiredBranch); // select changes
    EXPECT_DOUBLE_EQ(bank.read(0), 10.0);  // count register persists
    bank.write(0, 0.0);
    EXPECT_DOUBLE_EQ(bank.read(0), 0.0);
}

TEST(PmcBankDeath, SlotBoundsChecked)
{
    PmcBank bank(2);
    EXPECT_DEATH(bank.read(2), "out of range");
    EXPECT_DEATH(bank.program(5, Event::RetiredUop), "out of range");
    EXPECT_DEATH(bank.write(0, -1.0), "non-negative");
}

TEST(Mux, TwoGroupsWithSixCounters)
{
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList());
    EXPECT_EQ(mux.groupCount(), 2u);
    EXPECT_EQ(mux.groupOf(Event::RetiredUop), 0u);        // E1
    EXPECT_EQ(mux.groupOf(Event::RetiredBranch), 0u);     // E6
    EXPECT_EQ(mux.groupOf(Event::RetiredMispBranch), 1u); // E7
    EXPECT_EQ(mux.groupOf(Event::MabWaitCycles), 1u);     // E12
}

TEST(Mux, ProgramsCurrentGroupIntoBank)
{
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList(), /*stagger=*/0);
    // Group 0 = E1..E6 should be selected right away.
    EXPECT_EQ(bank.programmed(0), Event::RetiredUop);
    EXPECT_EQ(bank.programmed(5), Event::RetiredBranch);
}

TEST(Mux, SteadyCountsExtrapolateExactly)
{
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList());
    for (int t = 0; t < 10; ++t) {
        bank.observe(constantCounts(100.0));
        mux.afterTick();
    }
    const auto read = mux.readAndReset();
    // Each group saw 5 of 10 ticks at 100/tick -> extrapolated to 1000.
    for (std::size_t i = 0; i < kNumEvents; ++i)
        EXPECT_NEAR(read[i], 1000.0, 1e-9) << "event " << i;
}

TEST(Mux, ReadResetsState)
{
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList());
    bank.observe(constantCounts(50.0));
    mux.afterTick();
    bank.observe(constantCounts(50.0));
    mux.afterTick();
    mux.readAndReset();
    EXPECT_EQ(mux.ticksSinceReset(), 0u);
    const auto read = mux.readAndReset();
    for (double v : read)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Mux, UnobservedGroupReadsZero)
{
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList());
    bank.observe(constantCounts(100.0)); // only group 0 observed
    mux.afterTick();
    const auto read = mux.readAndReset();
    EXPECT_GT(read[0], 0.0);
    EXPECT_DOUBLE_EQ(read[11], 0.0);
}

TEST(Mux, PhaseFlipCausesExtrapolationError)
{
    // A workload alternating 200/0 per tick in sync with the rotation:
    // group 0 sees only the hot ticks, group 1 only the cold ones. The
    // extrapolated totals are badly wrong for both groups — the paper's
    // rapid-phase outlier mechanism, reproduced exactly.
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList());
    double truth = 0.0;
    for (int t = 0; t < 10; ++t) {
        const double v = (t % 2 == 0) ? 200.0 : 0.0;
        truth += v;
        bank.observe(constantCounts(v));
        mux.afterTick();
    }
    const auto read = mux.readAndReset();
    EXPECT_NEAR(read[0], 2.0 * truth, 1e-9); // group 0 doubles
    EXPECT_DOUBLE_EQ(read[11], 0.0);         // group 1 sees nothing
}

TEST(Mux, StaggerShiftsRotation)
{
    PmcBank bank_a(6), bank_b(6);
    PmcMultiplexer a(bank_a, allEventList(), 0);
    PmcMultiplexer b(bank_b, allEventList(), 1);
    bank_a.observe(constantCounts(100.0));
    a.afterTick();
    bank_b.observe(constantCounts(100.0));
    b.afterTick();
    const auto ra = a.readAndReset();
    const auto rb = b.readAndReset();
    EXPECT_GT(ra[0], 0.0);
    EXPECT_DOUBLE_EQ(ra[11], 0.0);
    EXPECT_DOUBLE_EQ(rb[0], 0.0);
    EXPECT_GT(rb[11], 0.0);
}

TEST(Mux, TwelveCountersNeedNoMultiplexing)
{
    PmcBank bank(12);
    PmcMultiplexer mux(bank, allEventList());
    EXPECT_EQ(mux.groupCount(), 1u);
    for (int t = 0; t < 7; ++t) {
        bank.observe(constantCounts(10.0));
        mux.afterTick();
    }
    const auto read = mux.readAndReset();
    for (double v : read)
        EXPECT_DOUBLE_EQ(v, 70.0);
}

TEST(Mux, SubsetOfEventsCoverable)
{
    // The daemon can choose to cover only the three performance events
    // with zero multiplexing on a six-slot bank.
    PmcBank bank(6);
    PmcMultiplexer mux(bank,
                       {Event::ClocksNotHalted, Event::RetiredInst,
                        Event::MabWaitCycles});
    EXPECT_EQ(mux.groupCount(), 1u);
    for (int t = 0; t < 5; ++t) {
        bank.observe(constantCounts(3.0));
        mux.afterTick();
    }
    const auto read = mux.readAndReset();
    EXPECT_DOUBLE_EQ(read[eventIndex(Event::RetiredInst)], 15.0);
    EXPECT_DOUBLE_EQ(read[eventIndex(Event::RetiredUop)], 0.0);
}

// --- the zero-coverage contract (documented on readAndReset) ------------

TEST(MuxZeroCoverage, ZeroTickGroupReadsExactlyZero)
{
    // Contract: a group that accumulated zero ticks since the last
    // reset reads exactly 0.0 for all its events — never a division
    // by zero coverage. Here group 1 is starved for the whole window.
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList(), /*stagger=*/0);
    bank.observe(constantCounts(100.0)); // one tick: group 0 only
    mux.afterTick();
    ASSERT_EQ(mux.ticksSinceReset(), 1u);
    const auto read = mux.readAndReset();
    for (std::size_t i = 0; i < kNumEvents; ++i) {
        if (mux.groupOf(static_cast<Event>(i)) == 1u) {
            EXPECT_DOUBLE_EQ(read[i], 0.0) << "event " << i;
        }
    }
}

TEST(MuxZeroCoverage, ZeroTickWindowReadsAllZero)
{
    // Degenerate window: readAndReset with no ticks at all returns the
    // all-zero vector and leaves the multiplexer usable.
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList());
    const auto read = mux.readAndReset();
    for (double v : read)
        EXPECT_DOUBLE_EQ(v, 0.0);
    EXPECT_EQ(mux.ticksSinceReset(), 0u);
    bank.observe(constantCounts(5.0));
    mux.afterTick();
    EXPECT_GT(mux.readAndReset()[0], 0.0);
}

TEST(MuxZeroCoverage, NoNanEverEscapes)
{
    // Whatever mixture of starved and covered groups, the extrapolated
    // vector is always finite.
    PmcBank bank(6);
    PmcMultiplexer mux(bank, allEventList());
    for (int t = 0; t < 3; ++t) {
        bank.observe(constantCounts(11.0));
        mux.afterTick();
        const auto read = mux.readAndReset();
        for (double v : read)
            EXPECT_TRUE(std::isfinite(v));
    }
}

// --- counter wraparound -------------------------------------------------

TEST(WrapDelta, IdentityWithoutWrap)
{
    EXPECT_EQ(wrapCounterDelta(100, 250, 48), 150u);
    EXPECT_EQ(wrapCounterDelta(0, 0, 48), 0u);
}

TEST(WrapDelta, RecoversIncrementAcrossWrap)
{
    // prev near full scale, cur small: the true increment assuming at
    // most one wrap.
    const std::uint64_t max = (1ULL << 16) - 1;
    EXPECT_EQ(wrapCounterDelta(max - 10, 5, 16), 16u);
    EXPECT_EQ(wrapCounterDelta(max, 0, 16), 1u);
}

TEST(WrapDelta, FullWidthBoundary)
{
    const std::uint64_t max = (1ULL << 48) - 1;
    EXPECT_EQ(wrapCounterDelta(max, 0, 48), 1u);
    EXPECT_EQ(wrapCounterDelta(0, max, 48), max);
}

TEST(WrapDeltaDeath, RejectsOutOfRangeInputs)
{
    EXPECT_DEATH(wrapCounterDelta(0, 1, 0), "width");
    EXPECT_DEATH(wrapCounterDelta(0, 1, 64), "width");
    EXPECT_DEATH(wrapCounterDelta(1ULL << 20, 0, 16), "exceed");
}

TEST(PmcBankWrap, UnboundedByDefault)
{
    PmcBank bank(6);
    EXPECT_EQ(bank.wrapBits(), 0u);
    EXPECT_EQ(bank.wrapEvents(), 0u);
}

TEST(PmcBankWrap, CountWrapsAtConfiguredWidth)
{
    PmcBank bank(6);
    bank.setWrapBits(8); // wraps at 256
    bank.program(0, Event::RetiredInst);
    EventVector counts{};
    counts[eventIndex(Event::RetiredInst)] = 100.0;
    bank.observe(counts);
    bank.observe(counts);
    EXPECT_DOUBLE_EQ(bank.read(0), 200.0);
    bank.observe(counts); // 300 -> wraps to 44
    EXPECT_DOUBLE_EQ(bank.read(0), 44.0);
    EXPECT_EQ(bank.wrapEvents(), 1u);
    EXPECT_DOUBLE_EQ(bank.maxCount(), 255.0);
}

TEST(PmcBankWrap, WrappedCountRecoverableViaWrapDelta)
{
    // The raw-MSR polling discipline: remember the previous raw value,
    // recover the true increment with wrapCounterDelta.
    PmcBank bank(6);
    bank.setWrapBits(8);
    bank.program(0, Event::RetiredInst);
    EventVector counts{};
    counts[eventIndex(Event::RetiredInst)] = 100.0;
    std::uint64_t prev = 0;
    std::uint64_t recovered = 0;
    for (int t = 0; t < 5; ++t) {
        bank.observe(counts);
        const auto cur = static_cast<std::uint64_t>(bank.read(0));
        recovered += wrapCounterDelta(prev, cur, 8);
        prev = cur;
    }
    EXPECT_EQ(recovered, 500u);
}

// Property sweep: with steady per-tick counts, extrapolation is exact
// for any counter-bank width once every group has been observed.
class WidthSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(WidthSweep, SteadyExtrapolationExact)
{
    const std::size_t width = GetParam();
    PmcBank bank(width);
    PmcMultiplexer mux(bank, allEventList());
    const std::size_t groups = mux.groupCount();
    const std::size_t ticks = groups * 6; // every group observed equally
    for (std::size_t t = 0; t < ticks; ++t) {
        bank.observe(constantCounts(7.0));
        mux.afterTick();
    }
    const auto read = mux.readAndReset();
    for (std::size_t i = 0; i < kNumEvents; ++i)
        EXPECT_NEAR(read[i], 7.0 * static_cast<double>(ticks), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 12u));

} // namespace
