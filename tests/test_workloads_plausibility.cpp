/**
 * @file
 * Per-program plausibility sweep: every one of the 52 synthetic
 * benchmarks must land in silicon-plausible IPC, power, and
 * memory-behaviour bands when run alone at the top VF state. Runs as a
 * parameterised test over the whole suite, so a bad trait row fails by
 * name.
 */

#include <gtest/gtest.h>

#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;

struct Measured
{
    double ipc = 0.0;
    double chip_power_w = 0.0;
    double core_dynamic_w = 0.0;
    double mcpi_share = 0.0; ///< memory cycles / unhalted cycles
};

Measured
measure(const std::string &name)
{
    sim::Chip chip(sim::fx8320Config(), 1234);
    chip.setJob(0, workloads::Suite::byName(name).makeLoopingJob());
    trace::Collector col(chip);
    col.collect(2);
    const auto recs = col.collect(8);

    Measured out;
    double inst = 0.0, cycles = 0.0, mab = 0.0;
    for (const auto &rec : recs) {
        inst += rec.oracleTotal(sim::Event::RetiredInst);
        cycles += rec.oracleTotal(sim::Event::ClocksNotHalted);
        mab += rec.oracleTotal(sim::Event::MabWaitCycles);
        out.chip_power_w += rec.true_power_w;
        out.core_dynamic_w += rec.true_dynamic_w;
    }
    out.ipc = inst / cycles;
    out.mcpi_share = mab / cycles;
    out.chip_power_w /= static_cast<double>(recs.size());
    out.core_dynamic_w /= static_cast<double>(recs.size());
    return out;
}

class SuiteSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SuiteSweep, IpcInPlausibleBand)
{
    const auto m = measure(GetParam());
    // Real single-thread IPC on a Piledriver-class core spans roughly
    // 0.2 (mcf-like) to 2.2 (hmmer-like).
    EXPECT_GT(m.ipc, 0.2) << GetParam();
    EXPECT_LT(m.ipc, 2.3) << GetParam();
}

TEST_P(SuiteSweep, SingleThreadPowerInPlausibleBand)
{
    const auto m = measure(GetParam());
    // One busy core + active-idle rest of the chip at VF5: between a
    // warm idle (~33 W) and a single-core power-virus envelope.
    EXPECT_GT(m.chip_power_w, 33.0) << GetParam();
    EXPECT_LT(m.chip_power_w, 70.0) << GetParam();
    EXPECT_GT(m.core_dynamic_w, 1.0) << GetParam();
    EXPECT_LT(m.core_dynamic_w, 30.0) << GetParam();
}

TEST_P(SuiteSweep, MemoryShareMatchesSuiteRole)
{
    const auto m = measure(GetParam());
    EXPECT_GE(m.mcpi_share, 0.0) << GetParam();
    EXPECT_LT(m.mcpi_share, 0.85) << GetParam();
    // The anchor programs must sit on their sides of the spectrum.
    if (GetParam() == "433.milc" || GetParam() == "429.mcf" ||
        GetParam() == "470.lbm") {
        EXPECT_GT(m.mcpi_share, 0.35) << GetParam();
    }
    if (GetParam() == "458.sjeng" || GetParam() == "456.hmmer" ||
        GetParam() == "EP") {
        EXPECT_LT(m.mcpi_share, 0.15) << GetParam();
    }
}

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto &p : workloads::Suite::all())
        names.push_back(p.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, SuiteSweep,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name)
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             return name;
                         });

} // namespace
