/**
 * @file
 * The telemetry number-formatting contract: every double a sink emits
 * must parse back to the exact same bits (shortest round-trip), the
 * fixed/integer helpers must match their snprintf predecessors, and the
 * whole-row encoders (CsvWriter, CsvSink, JsonlSink) must preserve that
 * property end to end.
 *
 * This pins the fix for the old "%.10g" formatter, which truncated
 * doubles to 10 significant digits and silently lost up to 7 bits of
 * mantissa in every trace.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "ppep/runtime/telemetry.hpp"
#include "ppep/trace/interval.hpp"
#include "ppep/util/csv.hpp"
#include "ppep/util/fmt.hpp"

namespace {

using namespace ppep;
namespace fmt = ppep::util::fmt;

std::uint64_t
bits(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

std::string
format(double v)
{
    fmt::RowBuffer row;
    row.appendDouble(v);
    return std::string(row.view());
}

/** strtod round trip must restore the exact bit pattern. */
void
expectRoundTrip(double v)
{
    const std::string s = format(v);
    ASSERT_FALSE(s.empty());
    ASSERT_LE(s.size(), fmt::kMaxDoubleChars);
    char *end = nullptr;
    const double back = std::strtod(s.c_str(), &end);
    EXPECT_EQ(end, s.c_str() + s.size()) << "trailing junk in: " << s;
    EXPECT_EQ(bits(back), bits(v)) << "lost bits formatting " << s;
}

TEST(FmtDouble, HandPickedValuesRoundTripBitExactly)
{
    const double cases[] = {
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        1.0 / 3.0,
        2.0 / 3.0,
        3.141592653589793,
        2.718281828459045,
        1e-300,
        1e300,
        -1.2345678901234567e-8,
        123456789.123456789,
        std::numeric_limits<double>::max(),
        -std::numeric_limits<double>::max(),
        std::numeric_limits<double>::min(),        // smallest normal
        std::numeric_limits<double>::denorm_min(), // smallest subnormal
        -std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::epsilon(),
        9007199254740993.0, // 2^53 + 1 rounds; still round-trips
        4.35,               // classic shortest-vs-exact pitfall
        0.3,
        2.2250738585072011e-308, // the strtod-killer subnormal boundary
    };
    for (double v : cases)
        expectRoundTrip(v);
}

TEST(FmtDouble, TenSigDigitFormatterWouldHaveLostTheseBits)
{
    // Witness for the bug being fixed: "%.10g" does NOT round-trip.
    const double v = 1.0 / 3.0;
    char old_style[32];
    std::snprintf(old_style, sizeof(old_style), "%.10g", v);
    EXPECT_NE(bits(std::strtod(old_style, nullptr)), bits(v));
    expectRoundTrip(v); // ...while the to_chars path does.
}

TEST(FmtDouble, RandomBitPatternsRoundTripBitExactly)
{
    std::mt19937_64 rng(2014);
    std::size_t tested = 0;
    while (tested < 10000) {
        const std::uint64_t b = rng();
        double v;
        std::memcpy(&v, &b, sizeof(v));
        if (!std::isfinite(v))
            continue; // NaN/inf take the JSON-null path, tested below
        expectRoundTrip(v);
        ++tested;
    }
}

TEST(FmtDouble, JsonEncodingMapsNonFiniteToNull)
{
    fmt::RowBuffer row;
    row.appendJsonDouble(std::numeric_limits<double>::quiet_NaN());
    row.append(',');
    row.appendJsonDouble(std::numeric_limits<double>::infinity());
    row.append(',');
    row.appendJsonDouble(-std::numeric_limits<double>::infinity());
    row.append(',');
    row.appendJsonDouble(1.5);
    EXPECT_EQ(row.view(), "null,null,null,1.5");
}

TEST(FmtFixed, MatchesSnprintfFixedNotation)
{
    const double cases[] = {0.0,    1.0,     99.95,  0.049999,
                            1e6,    123.456, 1e-12,  73.25,
                            -41.37, 1e18,    27.005, 3.14159};
    for (double v : cases) {
        for (int prec : {1, 2}) {
            fmt::RowBuffer row;
            row.appendFixed(v, prec);
            char ref[512];
            std::snprintf(ref, sizeof(ref), "%.*f", prec, v);
            EXPECT_EQ(row.view(), ref)
                << "value " << v << " precision " << prec;
        }
    }
}

TEST(FmtU64, BoundaryIntegersFormatExactly)
{
    const std::uint64_t cases[] = {
        0u, 1u, 9u, 10u, 1234567890123456789u,
        std::numeric_limits<std::uint64_t>::max()};
    for (std::uint64_t v : cases) {
        fmt::RowBuffer row;
        row.appendU64(v);
        EXPECT_EQ(row.view(), std::to_string(v));
        EXPECT_LE(row.size(), fmt::kMaxU64Chars);
    }
}

TEST(FmtRowBuffer, ClearReusesStorageAndMixedAppendsCompose)
{
    fmt::RowBuffer row(8); // deliberately tiny: must grow transparently
    row.append(std::string_view{"x="});
    row.appendDouble(0.25);
    row.append(',');
    row.appendU64(42);
    EXPECT_EQ(row.view(), "x=0.25,42");
    const char *before = row.data();
    row.clear();
    EXPECT_EQ(row.size(), 0u);
    row.append('a');
    EXPECT_EQ(row.view(), "a");
    EXPECT_EQ(row.data(), before); // clear() kept the buffer
}

// --- whole-row encoders --------------------------------------------------

std::vector<std::string>
split(const std::string &line, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : line) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

TEST(FmtCsvWriter, NumericRowsParseBackBitExactly)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "ppep_fmt_csv_roundtrip.csv";
    const std::vector<double> row = {1.0 / 3.0, -0.0, 0.1,
                                     std::numeric_limits<double>::max(),
                                     6.02214076e23};
    {
        util::CsvWriter csv(path.string());
        csv.writeRow(row);
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const auto cells = split(line, ',');
    ASSERT_EQ(cells.size(), row.size());
    for (std::size_t i = 0; i < row.size(); ++i)
        EXPECT_EQ(bits(std::strtod(cells[i].c_str(), nullptr)),
                  bits(row[i]))
            << "cell " << i << " = " << cells[i];
    std::filesystem::remove(path);
}

TEST(FmtTelemetry, CsvSinkDoublesParseBackBitExactly)
{
    // Drive one interval of awkward doubles through the CSV sink and
    // re-read every numeric column.
    trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.sensor_power_w = 61.0 / 7.0;
    rec.diode_temp_k = 310.0 + 1.0 / 3.0;
    rec.pmc.resize(2);
    rec.pmc[0][sim::eventIndex(sim::Event::RetiredInst)] = 1.25e8;
    rec.pmc[1][sim::eventIndex(sim::Event::RetiredInst)] = 3.1e7;
    const std::vector<std::size_t> cu_vf = {0, 2, 4, 1};

    runtime::IntervalTelemetry t;
    t.index = 7;
    t.time_s = 1.4000000000000001;
    t.rec = &rec;
    t.cu_vf = &cu_vf;
    t.cap_w = 62.5;
    t.predicted_power_w = 8.7142857142857135;
    t.decision_latency_s = 1.0 / 3e6;

    std::ostringstream out;
    runtime::CsvSink sink(out);
    sink.onInterval(t);
    sink.finish();

    std::istringstream lines(out.str());
    std::string header, line;
    ASSERT_TRUE(std::getline(lines, header));
    ASSERT_TRUE(std::getline(lines, line));
    // interval,time_s,cap_w + one cu{i}_vf per CU + measured,
    // predicted, diode, total_ips + one core{c}_ips per core +
    // decision_latency_us: 3 + 4 + 4 + 2 + 1 columns.
    const auto cells = split(line, ',');
    ASSERT_EQ(cells.size(), 14u);
    EXPECT_EQ(cells[0], "7");
    EXPECT_EQ(cells[3], "0");
    EXPECT_EQ(cells[4], "2");
    EXPECT_EQ(cells[5], "4");
    EXPECT_EQ(cells[6], "1");

    const double total_ips =
        (1.25e8 + 3.1e7) / rec.duration_s; // same fold as the sink
    const std::pair<std::size_t, double> numeric[] = {
        {1, t.time_s},
        {2, t.cap_w},
        {7, rec.sensor_power_w},
        {8, t.predicted_power_w},
        {9, rec.diode_temp_k},
        {10, total_ips},
        {11, 1.25e8 / rec.duration_s},
        {12, 3.1e7 / rec.duration_s},
        {13, t.decision_latency_s * 1e6},
    };
    for (const auto &[col, want] : numeric)
        EXPECT_EQ(bits(std::strtod(cells[col].c_str(), nullptr)),
                  bits(want))
            << "column " << col << " = " << cells[col];
}

TEST(FmtTelemetry, JsonlSinkDoublesParseBackBitExactly)
{
    trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.sensor_power_w = 47.0 / 11.0;
    rec.diode_temp_k = 333.33333333333331;
    rec.pmc.resize(1);
    rec.pmc[0][sim::eventIndex(sim::Event::RetiredInst)] = 9.9e7;
    const std::vector<std::size_t> cu_vf = {3};

    runtime::IntervalTelemetry t;
    t.index = 0;
    t.time_s = 0.2;
    t.rec = &rec;
    t.cu_vf = &cu_vf;
    t.cap_w = 100.0 / 3.0;
    // first interval: no prediction → JSON null
    t.predicted_power_w = std::numeric_limits<double>::quiet_NaN();

    std::ostringstream out;
    runtime::JsonlSink sink(out);
    sink.onInterval(t);
    sink.finish();
    const std::string line = out.str();

    auto field = [&](const std::string &key) {
        const std::string tag = "\"" + key + "\":";
        const auto pos = line.find(tag);
        EXPECT_NE(pos, std::string::npos) << key;
        return line.substr(pos + tag.size());
    };
    EXPECT_EQ(field("predicted_power_w").substr(0, 4), "null");
    EXPECT_EQ(bits(std::strtod(field("cap_w").c_str(), nullptr)),
              bits(t.cap_w));
    EXPECT_EQ(bits(std::strtod(field("measured_power_w").c_str(),
                               nullptr)),
              bits(rec.sensor_power_w));
    EXPECT_EQ(bits(std::strtod(field("diode_temp_k").c_str(), nullptr)),
              bits(rec.diode_temp_k));
}

} // namespace
