/**
 * @file
 * Unit tests for workload phases and jobs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ppep/sim/phase.hpp"

namespace {

using ppep::sim::Job;
using ppep::sim::Phase;

Phase
simplePhase(double instructions)
{
    Phase p;
    p.inst_count = instructions;
    return p;
}

TEST(Phase, DefaultIsValid)
{
    Phase p;
    EXPECT_NO_FATAL_FAILURE(p.validate());
}

TEST(PhaseDeath, RejectsLeadingExceedingMisses)
{
    Phase p;
    p.l2miss_per_inst = 0.001;
    p.leading_per_inst = 0.01;
    EXPECT_DEATH(p.validate(), "leading loads exceed");
}

TEST(PhaseDeath, RejectsMispredictsExceedingBranches)
{
    Phase p;
    p.branch_per_inst = 0.1;
    p.mispred_per_inst = 0.2;
    EXPECT_DEATH(p.validate(), "mispredictions exceed");
}

TEST(PhaseDeath, RejectsEmptyPhase)
{
    Phase p;
    p.inst_count = 0.0;
    EXPECT_DEATH(p.validate(), "instructions");
}

TEST(Job, SinglePhaseRunsToCompletion)
{
    Job j("t", {simplePhase(100.0)});
    EXPECT_FALSE(j.finished());
    EXPECT_DOUBLE_EQ(j.advance(60.0), 60.0);
    EXPECT_FALSE(j.finished());
    EXPECT_DOUBLE_EQ(j.advance(60.0), 40.0); // only 40 left
    EXPECT_TRUE(j.finished());
    EXPECT_DOUBLE_EQ(j.instructionsRetired(), 100.0);
}

TEST(Job, CrossesPhaseBoundaries)
{
    Job j("t", {simplePhase(50.0), simplePhase(50.0)});
    EXPECT_EQ(j.currentPhaseIndex(), 0u);
    j.advance(75.0);
    EXPECT_EQ(j.currentPhaseIndex(), 1u);
    EXPECT_FALSE(j.finished());
    j.advance(25.0);
    EXPECT_TRUE(j.finished());
}

TEST(Job, ExactBoundaryAdvancesPhase)
{
    Job j("t", {simplePhase(50.0), simplePhase(50.0)});
    j.advance(50.0);
    EXPECT_EQ(j.currentPhaseIndex(), 1u);
}

TEST(Job, LoopingNeverFinishes)
{
    Job j("t", {simplePhase(10.0)}, /*looping=*/true);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(j.advance(7.0), 7.0);
    EXPECT_FALSE(j.finished());
    EXPECT_DOUBLE_EQ(j.instructionsRetired(), 700.0);
}

TEST(Job, LoopingWrapsToFirstPhase)
{
    Job j("t", {simplePhase(10.0), simplePhase(10.0)}, /*looping=*/true);
    j.advance(20.0);
    EXPECT_EQ(j.currentPhaseIndex(), 0u);
    j.advance(10.0);
    EXPECT_EQ(j.currentPhaseIndex(), 1u);
}

TEST(Job, AdvanceOnFinishedReturnsZero)
{
    Job j("t", {simplePhase(10.0)});
    j.advance(10.0);
    ASSERT_TRUE(j.finished());
    EXPECT_DOUBLE_EQ(j.advance(5.0), 0.0);
}

TEST(Job, ResetRestoresStart)
{
    Job j("t", {simplePhase(10.0), simplePhase(10.0)});
    j.advance(15.0);
    j.reset();
    EXPECT_FALSE(j.finished());
    EXPECT_EQ(j.currentPhaseIndex(), 0u);
    EXPECT_DOUBLE_EQ(j.instructionsRetired(), 0.0);
}

TEST(Job, TotalInstructionsSumsPhases)
{
    Job j("t", {simplePhase(10.0), simplePhase(25.0)});
    EXPECT_DOUBLE_EQ(j.totalInstructions(), 35.0);
}

TEST(Job, NamePreserved)
{
    Job j("433.milc", {simplePhase(1.0)});
    EXPECT_EQ(j.name(), "433.milc");
}

TEST(Job, PhaseAccessor)
{
    Job j("t", {simplePhase(10.0), simplePhase(20.0)});
    EXPECT_EQ(j.phaseCount(), 2u);
    EXPECT_DOUBLE_EQ(j.phase(1).inst_count, 20.0);
}

TEST(JobDeath, EmptyPhaseListRejected)
{
    EXPECT_DEATH(Job("t", std::vector<Phase>{}), "no phases");
}

} // namespace
