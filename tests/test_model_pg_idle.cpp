/**
 * @file
 * Tests for the Eq. 7/8 power-gating idle decomposition and the Fig. 4
 * extraction protocol.
 */

#include <gtest/gtest.h>

#include "ppep/model/pg_idle_model.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/sim/hw_power_model.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;

/** Synthetic sweeps built from exact components (no noise). */
std::vector<PgSweepMeasurement>
syntheticSweeps(double p_cu, double p_nb, double p_base,
                double busy_power)
{
    PgSweepMeasurement m;
    m.vf_index = 0;
    for (std::size_t k = 0; k <= 4; ++k) {
        const double busy = busy_power * static_cast<double>(k);
        // PG off: everything idle-powered regardless of k.
        m.power_pg_off.push_back(4.0 * p_cu + p_nb + p_base + busy);
        // PG on: only busy CUs (and the NB when any CU is alive).
        const double idle =
            k == 0 ? p_base
                   : static_cast<double>(k) * p_cu + p_nb + p_base;
        m.power_pg_on.push_back(idle + busy);
    }
    return {m};
}

TEST(PgModel, ExtractsExactComponents)
{
    const auto model =
        PgIdleModel::fromSweeps(syntheticSweeps(6.0, 9.0, 7.0, 12.0), 4);
    const auto &c = model.components(0);
    EXPECT_NEAR(c.p_cu, 6.0, 1e-9);
    EXPECT_NEAR(c.p_nb, 9.0, 1e-9);
    EXPECT_NEAR(c.p_base, 7.0, 1e-9);
}

TEST(PgModel, Equation7Arithmetic)
{
    const auto model =
        PgIdleModel::fromSweeps(syntheticSweeps(6.0, 9.0, 7.0, 12.0), 4);
    // m = 2 busy cores in the CU, n = 4 busy chip-wide.
    EXPECT_NEAR(model.perCoreIdle(0, true, 2, 4),
                6.0 / 2.0 + (9.0 + 7.0) / 4.0, 1e-9);
}

TEST(PgModel, Equation8Arithmetic)
{
    const auto model =
        PgIdleModel::fromSweeps(syntheticSweeps(6.0, 9.0, 7.0, 12.0), 4);
    // PG off: whole chip idle shared by n = 4.
    EXPECT_NEAR(model.perCoreIdle(0, false, 2, 4),
                (4.0 * 6.0 + 9.0 + 7.0) / 4.0, 1e-9);
}

TEST(PgModel, PerCoreSharesSumToChipIdle)
{
    const auto model =
        PgIdleModel::fromSweeps(syntheticSweeps(6.0, 9.0, 7.0, 12.0), 4);
    // 3 busy CUs with {2, 1, 1} busy cores -> 4 busy cores total.
    const std::vector<std::size_t> busy{2, 1, 1, 0};
    double shared = 0.0;
    for (std::size_t cu = 0; cu < 3; ++cu)
        for (std::size_t i = 0; i < busy[cu]; ++i)
            shared += model.perCoreIdle(0, true, busy[cu], 4);
    EXPECT_NEAR(shared, model.chipIdle(0, true, busy), 1e-9);
}

TEST(PgModel, ChipIdleFullyGated)
{
    const auto model =
        PgIdleModel::fromSweeps(syntheticSweeps(6.0, 9.0, 7.0, 12.0), 4);
    EXPECT_NEAR(model.chipIdle(0, true, {0, 0, 0, 0}), 7.0, 1e-9);
    EXPECT_NEAR(model.chipIdle(0, false, {0, 0, 0, 0}),
                4.0 * 6.0 + 9.0 + 7.0, 1e-9);
}

TEST(PgModel, ChipIdleMixedUsesPerCuVf)
{
    // Two VF states with different CU idle power.
    auto sweeps = syntheticSweeps(6.0, 9.0, 7.0, 12.0);
    auto hi = syntheticSweeps(10.0, 9.0, 7.0, 20.0);
    hi[0].vf_index = 1;
    sweeps.push_back(hi[0]);
    const auto model = PgIdleModel::fromSweeps(sweeps, 4);
    const std::vector<std::size_t> cu_vf{0, 1, 0, 1};
    const std::vector<std::size_t> busy{1, 1, 0, 0};
    EXPECT_NEAR(model.chipIdleMixed(cu_vf, busy, true),
                7.0 + 9.0 + 6.0 + 10.0, 1e-9);
}

TEST(PgModel, AveragedNbAndBase)
{
    auto sweeps = syntheticSweeps(6.0, 8.0, 7.0, 12.0);
    auto second = syntheticSweeps(9.0, 10.0, 7.0, 20.0);
    second[0].vf_index = 1;
    sweeps.push_back(second[0]);
    const auto model = PgIdleModel::fromSweeps(sweeps, 4);
    EXPECT_NEAR(model.pNbAvg(), 9.0, 1e-9);
    EXPECT_NEAR(model.pBaseAvg(), 7.0, 1e-9);
}

TEST(PgModelDeath, UntrainedComponentsPanic)
{
    PgIdleModel m;
    EXPECT_FALSE(m.trained());
    EXPECT_DEATH(m.components(0), "no components");
}

/** The full Fig. 4 protocol against the simulator. */
TEST(PgProtocol, RecoversGroundTruthComponents)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 13);
    const auto model = trainer.trainPg();
    ASSERT_TRUE(model.trained());

    // Ground truth at the top VF, warm die.
    const sim::HwPowerModel hw(cfg);
    const double temp = cfg.thermal.ambient_k + 16.0;
    const double true_cu = hw.cuIdlePower(1.320, 3.5, temp);
    const double true_nb = hw.nbStaticPower(cfg.nb.vf_hi, temp);

    const auto &c = model.components(cfg.vf_table.top());
    // Measured components within ~20%: the protocol fights sensor noise,
    // thermal drift, and the PG residual, just like the real experiment.
    EXPECT_NEAR(c.p_cu / true_cu, 1.0, 0.2);
    EXPECT_NEAR(c.p_nb / (true_nb + cfg.power.housekeeping_w), 1.0, 0.3);
    // The measured base absorbs the gating residuals of the CUs and
    // the NB (nothing reaches exactly zero when gated). When every CU
    // gates, the shared rail falls to the lowest table voltage, so the
    // residual is priced there.
    const double v_floor = cfg.vf_table.state(0).voltage;
    const double residual =
        cfg.power.pg_residual *
        (static_cast<double>(cfg.n_cus) *
             hw.cuIdlePower(v_floor, 3.5, temp) +
         hw.nbStaticPower(cfg.nb.vf_hi, temp));
    EXPECT_NEAR(c.p_base, cfg.power.base_power_w + residual,
                (cfg.power.base_power_w + residual) * 0.3);
}

TEST(PgProtocol, Figure4GapsGrowAsBusyCusShrink)
{
    Trainer trainer(sim::fx8320Config(), 13);
    const auto sweeps = trainer.collectPgSweeps();
    ASSERT_EQ(sweeps.size(), 5u);
    for (const auto &s : sweeps) {
        // gap(k) decreases with k and vanishes at k = 4 (paper Fig. 4).
        double prev_gap = 1e9;
        for (std::size_t k = 0; k <= 4; ++k) {
            const double gap = s.power_pg_off[k] - s.power_pg_on[k];
            EXPECT_LT(gap, prev_gap + 0.5) << "VF " << s.vf_index
                                           << " k=" << k;
            prev_gap = gap;
        }
        EXPECT_NEAR(s.power_pg_off[4], s.power_pg_on[4],
                    0.02 * s.power_pg_off[4] + 0.5);
    }
}

TEST(PgProtocol, ComponentsShrinkWithVf)
{
    Trainer trainer(sim::fx8320Config(), 13);
    const auto model = trainer.trainPg();
    // CU idle power at VF1 must be well below VF5 (lower V and f).
    EXPECT_LT(model.components(0).p_cu,
              0.6 * model.components(4).p_cu);
}

} // namespace
