/**
 * @file
 * Unit tests for summary statistics (the AAE machinery every validation
 * figure relies on).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ppep/util/stats.hpp"

namespace {

namespace stats = ppep::util;

TEST(Stats, MeanSimple)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 2.5);
}

TEST(Stats, MeanSingle)
{
    const std::vector<double> xs{42.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 42.0);
}

TEST(Stats, StddevPopKnown)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(stats::stddevPop(xs), 2.0);
}

TEST(Stats, StddevSampleVsPop)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    EXPECT_GT(stats::stddevSample(xs), stats::stddevPop(xs));
    EXPECT_NEAR(stats::stddevSample(xs), 1.0, 1e-12);
}

TEST(Stats, StddevSampleDegenerate)
{
    const std::vector<double> one{5.0};
    EXPECT_DOUBLE_EQ(stats::stddevSample(one), 0.0);
}

TEST(Stats, MinMax)
{
    const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
    EXPECT_DOUBLE_EQ(stats::minValue(xs), -1.0);
    EXPECT_DOUBLE_EQ(stats::maxValue(xs), 7.0);
}

TEST(Stats, AbsRelErrBasics)
{
    EXPECT_DOUBLE_EQ(stats::absRelErr(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(stats::absRelErr(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(stats::absRelErr(-90.0, -100.0), 0.1);
}

TEST(Stats, AbsRelErrZeroReference)
{
    EXPECT_DOUBLE_EQ(stats::absRelErr(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(stats::absRelErr(5.0, 0.0), 1.0);
}

TEST(Stats, AaeAverages)
{
    const std::vector<double> est{110.0, 95.0};
    const std::vector<double> ref{100.0, 100.0};
    EXPECT_NEAR(stats::aae(est, ref), 0.075, 1e-12);
}

TEST(Stats, AaePerfectMatch)
{
    const std::vector<double> v{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(stats::aae(v, v), 0.0);
}

TEST(Stats, PearsonPerfectPositive)
{
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> ys{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(stats::pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const std::vector<double> ys{3.0, 2.0, 1.0};
    EXPECT_NEAR(stats::pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero)
{
    const std::vector<double> xs{1.0, 2.0, 3.0};
    const std::vector<double> ys{5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(stats::pearson(xs, ys), 0.0);
}

TEST(RunningStats, MatchesBatch)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    stats::RunningStats rs;
    for (double x : xs)
        rs.add(x);
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_NEAR(rs.mean(), stats::mean(xs), 1e-12);
    EXPECT_NEAR(rs.stddevPop(), stats::stddevPop(xs), 1e-12);
    EXPECT_DOUBLE_EQ(rs.minValue(), 2.0);
    EXPECT_DOUBLE_EQ(rs.maxValue(), 9.0);
    EXPECT_DOUBLE_EQ(rs.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero)
{
    stats::RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddevPop(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    stats::RunningStats rs;
    rs.add(-3.5);
    EXPECT_DOUBLE_EQ(rs.mean(), -3.5);
    EXPECT_DOUBLE_EQ(rs.stddevPop(), 0.0);
    EXPECT_DOUBLE_EQ(rs.minValue(), -3.5);
    EXPECT_DOUBLE_EQ(rs.maxValue(), -3.5);
}

// Property sweep: Welford must agree with the two-pass formula for many
// shapes of input.
class RunningStatsSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RunningStatsSweep, AgreesWithTwoPass)
{
    const int n = GetParam();
    std::vector<double> xs;
    for (int i = 0; i < n; ++i)
        xs.push_back(std::sin(i * 0.7) * 100.0 + i);
    stats::RunningStats rs;
    for (double x : xs)
        rs.add(x);
    EXPECT_NEAR(rs.mean(), stats::mean(xs), 1e-9);
    EXPECT_NEAR(rs.stddevPop(), stats::stddevPop(xs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RunningStatsSweep,
                         ::testing::Values(1, 2, 3, 10, 100, 1000));

} // namespace
