/**
 * @file
 * Tests for the DegradedModeGovernor safety shell: transparent
 * delegation while healthy, the hold/step-down safe policy while
 * degraded (boost clamping, cap guard band, floor at the slowest
 * state), and the telemetry surface (NaN prediction, no exploration).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/governor/degraded_mode.hpp"
#include "ppep/sim/chip.hpp"

namespace {

using namespace ppep;
using governor::DegradedModeGovernor;
using governor::SafePolicy;

/** Scripted inner policy that records what reaches it. */
class MockGovernor : public governor::Governor
{
  public:
    std::vector<std::size_t> next_decision;
    sim::VfState nb_state{};
    double predicted_w = 77.0;
    std::vector<model::VfPrediction> exploration{1};
    std::size_t decide_calls = 0;

    std::vector<std::size_t>
    decide(const trace::IntervalRecord &, double) override
    {
        ++decide_calls;
        return next_decision;
    }

    std::optional<sim::VfState> decideNb() override { return nb_state; }

    std::string name() const override { return "mock"; }

    const std::vector<model::VfPrediction> *
    lastExploration() const override
    {
        return &exploration;
    }

    double lastPredictedPower() const override { return predicted_w; }
};

struct Fixture
{
    sim::ChipConfig cfg = sim::fx8320Config();
    sim::Chip chip{cfg, 1};
    MockGovernor inner;
    bool degraded = false;

    DegradedModeGovernor
    make(SafePolicy policy = {})
    {
        return DegradedModeGovernor(
            chip, inner, [this](const trace::IntervalRecord &) {
                return degraded;
            },
            policy);
    }

    /** An interval record at a uniform VF with a given power. */
    trace::IntervalRecord
    record(std::size_t vf, double power_w) const
    {
        trace::IntervalRecord rec;
        rec.cu_vf.assign(cfg.n_cus, vf);
        rec.sensor_power_w = power_w;
        return rec;
    }
};

TEST(DegradedMode, HealthyDelegatesEverything)
{
    Fixture fx;
    fx.inner.next_decision.assign(fx.cfg.n_cus, 2);
    auto gov = fx.make();

    const auto vf = gov.decide(fx.record(3, 50.0), 95.0);
    EXPECT_EQ(vf, fx.inner.next_decision);
    EXPECT_EQ(fx.inner.decide_calls, 1u);
    EXPECT_FALSE(gov.degradedNow());
    EXPECT_EQ(gov.degradedIntervals(), 0u);
    // Telemetry passes straight through.
    EXPECT_DOUBLE_EQ(gov.lastPredictedPower(), 77.0);
    EXPECT_EQ(gov.lastExploration(), &fx.inner.exploration);
    ASSERT_TRUE(gov.decideNb().has_value());
}

TEST(DegradedMode, DegradedHoldsTheCurrentOperatingPoint)
{
    Fixture fx;
    fx.degraded = true;
    auto gov = fx.make();

    // Power comfortably under the cap: hold, don't consult the inner
    // policy at all.
    const auto vf = gov.decide(fx.record(3, 50.0), 95.0);
    EXPECT_EQ(vf, std::vector<std::size_t>(fx.cfg.n_cus, 3));
    EXPECT_EQ(fx.inner.decide_calls, 0u);
    EXPECT_TRUE(gov.degradedNow());
    EXPECT_EQ(gov.degradedIntervals(), 1u);
}

TEST(DegradedMode, DegradedStepsDownInsideTheGuardBand)
{
    Fixture fx;
    fx.degraded = true;
    auto gov = fx.make();

    // cap_guard = 0.1: 90 W cap means stepping starts above 81 W.
    const auto vf = gov.decide(fx.record(3, 85.0), 90.0);
    EXPECT_EQ(vf, std::vector<std::size_t>(fx.cfg.n_cus, 2));
}

TEST(DegradedMode, DegradedFloorsAtTheSlowestState)
{
    Fixture fx;
    fx.degraded = true;
    auto gov = fx.make();

    const auto vf = gov.decide(fx.record(0, 200.0), 90.0);
    EXPECT_EQ(vf, std::vector<std::size_t>(fx.cfg.n_cus, 0));
}

TEST(DegradedMode, DegradedClampsBoostRequestsToTheTable)
{
    Fixture fx;
    fx.degraded = true;
    auto gov = fx.make();

    // The interval ran at a boost index (>= vf_table.size()); holding
    // it would keep an untrustworthy system in boost. The safe policy
    // clamps to the top software P-state.
    const std::size_t boost = fx.cfg.vf_table.size();
    const std::size_t top = fx.cfg.vf_table.size() - 1;
    const auto vf = gov.decide(fx.record(boost, 50.0), 95.0);
    EXPECT_EQ(vf, std::vector<std::size_t>(fx.cfg.n_cus, top));
}

TEST(DegradedMode, DegradedSuppressesPredictionAndExploration)
{
    Fixture fx;
    fx.degraded = true;
    auto gov = fx.make();
    gov.decide(fx.record(3, 50.0), 95.0);

    EXPECT_TRUE(std::isnan(gov.lastPredictedPower()));
    EXPECT_EQ(gov.lastExploration(), nullptr);
    EXPECT_FALSE(gov.decideNb().has_value());
}

TEST(DegradedMode, RepromotionReturnsControlToTheInnerPolicy)
{
    Fixture fx;
    fx.inner.next_decision.assign(fx.cfg.n_cus, 4);
    auto gov = fx.make();

    fx.degraded = true;
    gov.decide(fx.record(3, 50.0), 95.0);
    gov.decide(fx.record(3, 50.0), 95.0);
    EXPECT_EQ(gov.degradedIntervals(), 2u);
    EXPECT_EQ(fx.inner.decide_calls, 0u);

    fx.degraded = false;
    const auto vf = gov.decide(fx.record(3, 50.0), 95.0);
    EXPECT_EQ(vf, fx.inner.next_decision);
    EXPECT_FALSE(gov.degradedNow());
    EXPECT_EQ(fx.inner.decide_calls, 1u);
    EXPECT_EQ(gov.degradedIntervals(), 2u); // not incremented again
    EXPECT_DOUBLE_EQ(gov.lastPredictedPower(), 77.0);
}

TEST(DegradedMode, UncappedRunsNeverStepDown)
{
    Fixture fx;
    fx.degraded = true;
    auto gov = fx.make();

    // CapSchedule::unlimited() hands decide() a huge-but-finite cap;
    // the guard band must not fire on any physical power.
    const double no_cap = governor::CapSchedule::unlimited().capAt(0);
    const auto vf = gov.decide(fx.record(3, 500.0), no_cap);
    EXPECT_EQ(vf, std::vector<std::size_t>(fx.cfg.n_cus, 3));
}

TEST(DegradedMode, EmptyProbeMeansAlwaysHealthy)
{
    Fixture fx;
    fx.inner.next_decision.assign(fx.cfg.n_cus, 1);
    DegradedModeGovernor gov(fx.chip, fx.inner, nullptr);
    const auto vf = gov.decide(fx.record(3, 500.0), 10.0);
    EXPECT_EQ(vf, fx.inner.next_decision);
    EXPECT_FALSE(gov.degradedNow());
}

TEST(DegradedMode, NameWrapsTheInnerName)
{
    Fixture fx;
    auto gov = fx.make();
    EXPECT_EQ(gov.name(), "degraded-mode(mock)");
}

TEST(DegradedModeDeath, CapGuardOutsideUnitRangeIsFatal)
{
    Fixture fx;
    SafePolicy bad;
    bad.cap_guard = 1.0;
    EXPECT_DEATH(fx.make(bad), "cap_guard");
}

} // namespace
