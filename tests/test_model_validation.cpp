/**
 * @file
 * End-to-end cross-validation tests: a scaled-down version of the
 * paper's Figs. 2/3/6 pipeline must land in the paper's error bands.
 * The full 152-combination runs live in the bench binaries; these tests
 * use a 24-combination subset to stay fast.
 */

#include <gtest/gtest.h>

#include "ppep/model/validation.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep::model;
namespace wl = ppep::workloads;

/** A diverse 24-combo subset: 8 from each suite. */
std::vector<const wl::Combination *>
subset()
{
    std::vector<const wl::Combination *> out;
    std::size_t spe = 0, par = 0, npb = 0;
    for (const auto &c : wl::allCombinations()) {
        auto &count = c.suite == wl::SuiteId::Spec
                          ? spe
                          : (c.suite == wl::SuiteId::Parsec ? par : npb);
        if (count < 8) {
            out.push_back(&c);
            ++count;
        }
    }
    return out;
}

/** Shared prepared validator (collection + training once per file). */
const Validator &
shared()
{
    static const Validator v = [] {
        Validator val(ppep::sim::fx8320Config(), subset(), 31, 4);
        val.prepare(60);
        return val;
    }();
    return v;
}

TEST(Validation, DatasetCoversComboVfCross)
{
    const auto &v = shared();
    EXPECT_EQ(v.dataset().size(), 24u * 5u);
    for (const auto &t : v.dataset())
        EXPECT_FALSE(t.recs.empty());
}

TEST(Validation, FoldsPartitionCombos)
{
    const auto &v = shared();
    std::array<std::size_t, 4> sizes{};
    for (std::size_t i = 0; i < v.combos().size(); ++i)
        ++sizes[v.foldOf(i)];
    for (std::size_t s : sizes)
        EXPECT_EQ(s, 6u);
}

TEST(Validation, AlphaNearGroundTruth)
{
    // The trainer must recover the configured voltage exponent.
    const auto &v = shared();
    EXPECT_NEAR(v.foldModels(0).alpha,
                ppep::sim::fx8320Config().power.alpha_true, 0.25);
}

TEST(Validation, ChipModelErrorInPaperBand)
{
    // Paper Fig. 2b: 4.6% average AAE (sd 2.8%) for the chip model.
    const auto errors = shared().validateEstimation();
    const auto agg = aggregate(
        errors, [](const ComboError &e) { return e.aae_chip; });
    EXPECT_GT(agg.count, 0u);
    EXPECT_LT(agg.mean, 0.09);
    EXPECT_GT(agg.mean, 0.005); // a perfect model would be suspicious
}

TEST(Validation, DynamicModelErrorInPaperBand)
{
    // Paper Fig. 2a: 10.6% average AAE for the dynamic model.
    const auto errors = shared().validateEstimation();
    const auto agg = aggregate(
        errors, [](const ComboError &e) { return e.aae_dynamic; });
    EXPECT_LT(agg.mean, 0.25);
    EXPECT_GT(agg.mean, 0.01);
}

TEST(Validation, DynamicErrorExceedsChipError)
{
    // Dynamic power is the harder target (smaller denominator): its
    // relative error must exceed the chip-level error, as in the paper.
    const auto errors = shared().validateEstimation();
    const auto dyn = aggregate(
        errors, [](const ComboError &e) { return e.aae_dynamic; });
    const auto chip = aggregate(
        errors, [](const ComboError &e) { return e.aae_chip; });
    EXPECT_GT(dyn.mean, chip.mean);
}

TEST(Validation, CrossVfChipErrorInPaperBand)
{
    // Paper Fig. 3b: 4.2% average across the 25 VF pairs.
    const auto errors = shared().validateCrossVf();
    const auto agg = aggregate(
        errors, [](const CrossVfError &e) { return e.err_chip; });
    EXPECT_EQ(agg.count, 24u * 25u);
    EXPECT_LT(agg.mean, 0.09);
}

TEST(Validation, SelfPairBeatsDistantPair)
{
    // VFi->VFi prediction must be more accurate on average than the
    // furthest extrapolation VF5->VF1.
    const auto errors = shared().validateCrossVf();
    ppep::util::RunningStats self, distant;
    for (const auto &e : errors) {
        if (e.vf_from == e.vf_to)
            self.add(e.err_chip);
        if (e.vf_from == 4 && e.vf_to == 0)
            distant.add(e.err_chip);
    }
    EXPECT_LT(self.mean(), distant.mean() + 0.02);
}

TEST(Validation, EnergyPredictionBeatsGreenGovernors)
{
    // Paper Fig. 6: PPEP 3.6% vs Green Governors ~7% at VF5.
    const auto errors = shared().validateEnergy();
    ppep::util::RunningStats ppep_err, gg_err;
    for (const auto &e : errors) {
        if (e.vf_index != 4)
            continue;
        ppep_err.add(e.aae_ppep);
        gg_err.add(e.aae_gg);
    }
    EXPECT_GT(ppep_err.count(), 0u);
    EXPECT_LT(ppep_err.mean(), 0.10);
    EXPECT_GT(gg_err.mean(), ppep_err.mean());
}

TEST(Validation, EnergyErrorsReportedPerVf)
{
    const auto errors = shared().validateEnergy();
    std::array<std::size_t, 5> seen{};
    for (const auto &e : errors)
        ++seen[e.vf_index];
    for (std::size_t s : seen)
        EXPECT_GT(s, 0u);
}

} // namespace
