/**
 * @file
 * Tests for the Eq. 3 dynamic power model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/model/dynamic_power_model.hpp"
#include "ppep/util/rng.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;

/** Rows generated from a known non-negative weight vector at V5. */
std::vector<DynTrainingRow>
syntheticRows(const std::array<double, sim::kNumPowerEvents> &truth,
              std::size_t n, double noise_sd, ppep::util::Rng &rng)
{
    std::vector<DynTrainingRow> rows;
    for (std::size_t r = 0; r < n; ++r) {
        DynTrainingRow row;
        double power = 0.0;
        for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i) {
            row.rates_per_s[i] = rng.uniform(0.0, 1e9);
            power += truth[i] * row.rates_per_s[i];
        }
        row.dynamic_power_w = power + rng.gaussian(0.0, noise_sd);
        rows.push_back(row);
    }
    return rows;
}

constexpr std::array<double, sim::kNumPowerEvents> kTruth{
    0.9e-9, 1.2e-9, 0.5e-9, 0.7e-9, 3.0e-9,
    0.3e-9, 8.0e-9, 6.0e-9, 0.1e-9};

TEST(DynModel, RecoversWeightsNoiseless)
{
    ppep::util::Rng rng(1);
    const auto rows = syntheticRows(kTruth, 500, 0.0, rng);
    const auto m = DynamicPowerModel::train(rows, 1.32, 2.0);
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        EXPECT_NEAR(m.weights()[i] / kTruth[i], 1.0, 1e-6) << i;
}

TEST(DynModel, RecoversWeightsUnderNoise)
{
    ppep::util::Rng rng(2);
    const auto rows = syntheticRows(kTruth, 4000, 0.5, rng);
    const auto m = DynamicPowerModel::train(rows, 1.32, 2.0);
    // Tolerance has an absolute floor: the smallest weights sit below
    // this noise level's identifiability limit at n = 4000.
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        EXPECT_NEAR(m.weights()[i], kTruth[i],
                    std::max(0.1 * kTruth[i], 5e-11))
            << i;
}

TEST(DynModel, WeightsNeverNegative)
{
    ppep::util::Rng rng(3);
    // Adversarial target: pure noise.
    std::vector<DynTrainingRow> rows;
    for (int r = 0; r < 200; ++r) {
        DynTrainingRow row;
        for (auto &v : row.rates_per_s)
            v = rng.uniform(0.0, 1e9);
        row.dynamic_power_w = rng.uniform(-20.0, 20.0);
        rows.push_back(row);
    }
    const auto m = DynamicPowerModel::train(rows, 1.32, 2.0);
    for (double w : m.weights())
        EXPECT_GE(w, 0.0);
}

TEST(DynModel, EstimateAtTrainingVoltageIsLinear)
{
    ppep::util::Rng rng(4);
    const auto rows = syntheticRows(kTruth, 500, 0.0, rng);
    const auto m = DynamicPowerModel::train(rows, 1.32, 2.3);
    std::array<double, sim::kNumPowerEvents> rates{};
    rates.fill(1e8);
    double expect = 0.0;
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        expect += kTruth[i] * 1e8;
    EXPECT_NEAR(m.estimate(rates, 1.32), expect, expect * 1e-5);
}

TEST(DynModel, VoltageScalingOnlyAffectsCoreEvents)
{
    ppep::util::Rng rng(5);
    const auto rows = syntheticRows(kTruth, 500, 0.0, rng);
    const double alpha = 2.3;
    const auto m = DynamicPowerModel::train(rows, 1.32, alpha);
    std::array<double, sim::kNumPowerEvents> core_only{};
    for (std::size_t i = 0; i < sim::kNumCorePowerEvents; ++i)
        core_only[i] = 1e8;
    std::array<double, sim::kNumPowerEvents> nb_only{};
    nb_only[7] = 1e8;
    nb_only[8] = 1e8;

    const double vscale = std::pow(0.888 / 1.32, alpha);
    EXPECT_NEAR(m.estimate(core_only, 0.888),
                m.estimate(core_only, 1.32) * vscale, 1e-9);
    // NB-proxy events (E8, E9) are not scaled: the NB keeps its VF.
    EXPECT_NEAR(m.estimate(nb_only, 0.888), m.estimate(nb_only, 1.32),
                1e-9);
}

TEST(DynModel, SplitPartsSumToEstimate)
{
    ppep::util::Rng rng(6);
    const auto rows = syntheticRows(kTruth, 500, 0.0, rng);
    const auto m = DynamicPowerModel::train(rows, 1.32, 2.0);
    std::array<double, sim::kNumPowerEvents> rates{};
    rates.fill(2e8);
    double core = 0.0, nb = 0.0;
    m.split(rates, 1.1, core, nb);
    EXPECT_NEAR(core + nb, m.estimate(rates, 1.1), 1e-12);
    EXPECT_GT(core, 0.0);
    EXPECT_GT(nb, 0.0);
}

TEST(DynModel, EstimateFromRatesMatchesArray)
{
    ppep::util::Rng rng(7);
    const auto rows = syntheticRows(kTruth, 500, 0.0, rng);
    const auto m = DynamicPowerModel::train(rows, 1.32, 2.0);
    sim::EventVector ev{};
    std::array<double, sim::kNumPowerEvents> rates{};
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i) {
        ev[i] = 3e8;
        rates[i] = 3e8;
    }
    EXPECT_DOUBLE_EQ(m.estimateFromRates(ev, 1.2),
                     m.estimate(rates, 1.2));
}

TEST(DynModel, PowerEventRatesDividesByDuration)
{
    sim::EventVector ev{};
    for (std::size_t i = 0; i < sim::kNumEvents; ++i)
        ev[i] = 100.0 * static_cast<double>(i + 1);
    const auto rates = powerEventRates(ev, 0.2);
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        EXPECT_DOUBLE_EQ(rates[i], 500.0 * static_cast<double>(i + 1));
}

TEST(DynModel, PowerEventRatesSumsCores)
{
    std::vector<sim::EventVector> cores(3);
    for (auto &c : cores)
        for (std::size_t i = 0; i < sim::kNumEvents; ++i)
            c[i] = 10.0;
    const auto rates = powerEventRates(cores, 0.2);
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        EXPECT_DOUBLE_EQ(rates[i], 150.0);
}

TEST(DynModelDeath, TooFewRowsRejected)
{
    std::vector<DynTrainingRow> rows(3);
    EXPECT_DEATH(DynamicPowerModel::train(rows, 1.32, 2.0),
                 "training rows");
}

TEST(DynModelDeath, UntrainedEstimatePanics)
{
    DynamicPowerModel m;
    std::array<double, sim::kNumPowerEvents> rates{};
    EXPECT_DEATH(m.estimate(rates, 1.0), "not trained");
}

} // namespace
