/**
 * @file
 * Tests for the interval-trace CSV exporter.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ppep/trace/collector.hpp"
#include "ppep/trace/export.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;

class ExportTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "ppep_trace_test.csv";

    std::vector<std::string>
    lines()
    {
        std::ifstream in(path_);
        std::vector<std::string> out;
        std::string line;
        while (std::getline(in, line))
            out.push_back(line);
        return out;
    }

    static std::vector<std::string>
    cells(const std::string &line)
    {
        std::vector<std::string> out;
        std::stringstream ss(line);
        std::string cell;
        while (std::getline(ss, cell, ','))
            out.push_back(cell);
        return out;
    }

    std::vector<trace::IntervalRecord>
    shortTrace()
    {
        sim::Chip chip(sim::fx8320Config(), 1);
        chip.setAllVf(2);
        workloads::launch(chip, workloads::replicate("456.hmmer", 1),
                          true);
        trace::Collector col(chip);
        return col.collect(5);
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }
};

TEST_F(ExportTest, HeaderPlusOneRowPerInterval)
{
    trace::exportCsv(shortTrace(), path_);
    const auto ls = lines();
    ASSERT_EQ(ls.size(), 6u); // header + 5 intervals
    EXPECT_EQ(cells(ls[0]).front(), "interval");
}

TEST_F(ExportTest, DefaultColumnsIncludeEventRates)
{
    trace::exportCsv(shortTrace(), path_);
    const auto header = cells(lines()[0]);
    EXPECT_EQ(header.size(), 6u + sim::kNumEvents);
    EXPECT_EQ(header[6], "e1_per_s");
    EXPECT_EQ(header.back(), "e12_per_s");
}

TEST_F(ExportTest, TruthColumnsOptIn)
{
    trace::ExportOptions opt;
    opt.truth = true;
    trace::exportCsv(shortTrace(), path_, opt);
    const auto header = cells(lines()[0]);
    EXPECT_EQ(header.size(), 6u + sim::kNumEvents + 5u);
    EXPECT_EQ(header.back(), "nb_utilization");
}

TEST_F(ExportTest, MinimalColumns)
{
    trace::ExportOptions opt;
    opt.pmc_rates = false;
    trace::exportCsv(shortTrace(), path_, opt);
    EXPECT_EQ(cells(lines()[0]).size(), 6u);
}

TEST_F(ExportTest, ValuesMatchRecords)
{
    const auto trace_data = shortTrace();
    trace::exportCsv(trace_data, path_);
    const auto ls = lines();
    for (std::size_t i = 0; i < trace_data.size(); ++i) {
        const auto row = cells(ls[i + 1]);
        EXPECT_DOUBLE_EQ(std::stod(row[0]), static_cast<double>(i));
        EXPECT_NEAR(std::stod(row[2]), trace_data[i].sensor_power_w,
                    1e-6);
        EXPECT_DOUBLE_EQ(std::stod(row[4]), 2.0); // VF index
        const double e11 = std::stod(row[6 + sim::eventIndex(
                                             sim::Event::RetiredInst)]);
        EXPECT_NEAR(e11,
                    trace_data[i].pmcTotal(sim::Event::RetiredInst) /
                        trace_data[i].duration_s,
                    1.0);
    }
}

TEST_F(ExportTest, EmptyTraceWritesHeaderOnly)
{
    trace::exportCsv({}, path_);
    EXPECT_EQ(lines().size(), 1u);
}

} // namespace
