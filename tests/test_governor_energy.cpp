/**
 * @file
 * Tests for the energy/EDP exploration (Figs. 8-11) and the
 * energy-optimal governor.
 */

#include <gtest/gtest.h>

#include "ppep/governor/energy_explorer.hpp"
#include "ppep/governor/energy_governor.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::governor;
namespace sim = ppep::sim;
namespace wl = ppep::workloads;
namespace model = ppep::model;

struct Shared
{
    sim::ChipConfig cfg = sim::fx8320Config();
    model::TrainedModels models;

    Shared()
    {
        model::Trainer trainer(cfg, 61);
        std::vector<const wl::Combination *> training;
        for (const auto &c : wl::allCombinations())
            if (c.instances.size() == 1 && training.size() < 12)
                training.push_back(&c);
        models = trainer.trainAll(training);
    }

    static const Shared &
    get()
    {
        static const Shared s;
        return s;
    }
};

TEST(Explorer, SweepCoversVfStates)
{
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 71);
    const auto points = ex.explore("433.milc", 1);
    ASSERT_EQ(points.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(points[i].vf_index, i);
        EXPECT_FALSE(points[i].nb_low);
        EXPECT_GT(points[i].energy_j, 0.0);
        EXPECT_GT(points[i].time_s, 0.0);
        EXPECT_NEAR(points[i].edp,
                    points[i].energy_j * points[i].time_s, 1e-9);
        EXPECT_NEAR(points[i].energy_j,
                    points[i].core_energy_j + points[i].nb_energy_j,
                    1e-9);
    }
}

TEST(Explorer, LowestVfIsEnergyOptimal)
{
    // Paper Fig. 8 observation 1: for both CPU- and memory-bound
    // programs the lowest VF state minimises per-thread energy.
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 72);
    for (const char *prog : {"433.milc", "458.sjeng"}) {
        for (std::size_t copies : {1u, 4u}) {
            const auto pts = ex.explore(prog, copies);
            for (std::size_t i = 1; i < pts.size(); ++i)
                EXPECT_LT(pts[0].energy_j, pts[i].energy_j)
                    << prog << " x" << copies << " vs VF" << i + 1;
        }
    }
}

TEST(Explorer, CpuBoundSharingLowersPerThreadEnergy)
{
    // Paper Fig. 8 observation 3: CPU-bound instances share NB/static
    // energy, so per-thread energy falls with more instances.
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 73);
    const auto x1 = ex.explore("458.sjeng", 1);
    const auto x4 = ex.explore("458.sjeng", 4);
    EXPECT_GT(x1[4].energy_j, x4[4].energy_j); // at VF5
}

TEST(Explorer, MemoryBoundContentionRaisesPerThreadEnergyAtHighVf)
{
    // Paper Fig. 8 observation 2: NB contention makes multi-instance
    // memory-bound runs cost *more* per thread at the high VF state.
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 74);
    const auto x1 = ex.explore("433.milc", 1);
    const auto x4 = ex.explore("433.milc", 4);
    EXPECT_LT(x1[4].energy_j, x4[4].energy_j); // at VF5
}

TEST(Explorer, MemoryBoundNbShareExceedsCpuBound)
{
    // Paper Fig. 10: NB consumes ~60% of energy for memory-bound
    // programs and ~25% for CPU-bound ones.
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 75);
    const auto milc = ex.explore("433.milc", 1);
    const auto sjeng = ex.explore("458.sjeng", 4);
    const double milc_share =
        milc[4].nb_energy_j / milc[4].energy_j;
    const double sjeng_share =
        sjeng[4].nb_energy_j / sjeng[4].energy_j;
    EXPECT_GT(milc_share, sjeng_share + 0.1);
    EXPECT_GT(milc_share, 0.30);
    EXPECT_LT(sjeng_share, 0.30);
}

TEST(Explorer, NbShareGrowsAtLowerVf)
{
    // Paper Fig. 10: lowering the core VF state increases the NB's
    // fraction (NB energy is core-VF-independent, runtime stretches).
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 76);
    const auto pts = ex.explore("433.milc", 2);
    const double share_hi = pts[4].nb_energy_j / pts[4].energy_j;
    const double share_lo = pts[0].nb_energy_j / pts[0].energy_j;
    EXPECT_GT(share_lo, share_hi);
}

TEST(Explorer, NbLowUnlocksEnergySavings)
{
    // Paper Fig. 11a: NB DVFS saves energy for both workload types.
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 77);
    for (const char *prog : {"433.milc", "458.sjeng"}) {
        const auto pts = ex.explore(prog, 1, /*include_nb_low=*/true);
        ASSERT_EQ(pts.size(), 10u);
        const auto summary = EnergyExplorer::summarize(pts);
        EXPECT_GT(summary.energy_saving, 0.05) << prog;
        EXPECT_LT(summary.energy_saving, 0.45) << prog;
    }
}

TEST(Explorer, NbLowUnlocksSpeedup)
{
    // Paper Fig. 11b: at similar energy, cores can run faster.
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 78);
    const auto pts = ex.explore("458.sjeng", 1, true);
    const auto summary = EnergyExplorer::summarize(pts);
    EXPECT_GT(summary.speedup, 1.1);
}

TEST(Explorer, NbLowStretchesMemoryBoundTime)
{
    // At the same core VF, NB-low must slow a memory-bound program.
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyExplorer ex(s.cfg, ppep, 79);
    const auto pts = ex.explore("429.mcf", 1, true);
    EXPECT_GT(pts[9].time_s, pts[4].time_s); // VF5/lo vs VF5/hi
}

TEST(EnergyGovernor, PicksLowVfForEnergy)
{
    // Fig. 8 observation 1 again, now through the governor: the
    // energy-optimal policy should settle at the lowest VF state.
    const auto &s = Shared::get();
    sim::Chip chip(s.cfg, 80);
    chip.setJob(0, wl::Suite::byName("433.milc").makeLoopingJob());
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyOptimalGovernor gov(s.cfg, ppep, EnergyObjective::Energy);
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(10, CapSchedule::unlimited());
    EXPECT_EQ(steps.back().cu_vf[0], 0u);
}

TEST(EnergyGovernor, EdpPrefersFasterStateThanEnergy)
{
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);

    const auto settle = [&](EnergyObjective obj) {
        sim::Chip chip(s.cfg, 81);
        chip.setJob(0,
                    wl::Suite::byName("458.sjeng").makeLoopingJob());
        EnergyOptimalGovernor gov(s.cfg, ppep, obj);
        GovernorLoop loop(chip, gov);
        return loop.run(10, CapSchedule::unlimited()).back().cu_vf[0];
    };
    EXPECT_GE(settle(EnergyObjective::Edp),
              settle(EnergyObjective::Energy));
}

TEST(EnergyGovernor, RespectsCap)
{
    const auto &s = Shared::get();
    sim::Chip chip(s.cfg, 82);
    for (std::size_t c = 0; c < 8; ++c)
        chip.setJob(c, wl::Suite::byName("EP").makeLoopingJob());
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EnergyOptimalGovernor gov(s.cfg, ppep, EnergyObjective::Edp);
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(12, CapSchedule(60.0));
    for (std::size_t i = 2; i < steps.size(); ++i)
        EXPECT_LE(steps[i].rec.sensor_power_w, 60.0 * 1.06);
}

} // namespace
