/**
 * @file
 * Tests for the offline training protocols themselves (Fig. 1 cooling,
 * alpha calibration, dataset collection, trainAll assembly).
 */

#include <gtest/gtest.h>

#include "ppep/model/trainer.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;
namespace wl = ppep::workloads;

const wl::Combination &
comboNamed(const std::string &name)
{
    for (const auto &c : wl::allCombinations())
        if (c.name == name)
            return c;
    ADD_FAILURE() << "no combo " << name;
    static wl::Combination dummy;
    return dummy;
}

TEST(Trainer, CoolingTraceHasBothPhases)
{
    Trainer trainer(sim::fx8320Config(), 1);
    const auto trace = trainer.collectCoolingTrace(4, 100, 150);
    EXPECT_EQ(trace.cool_start, 100u);
    EXPECT_EQ(trace.power_curve_w.size(), 250u);
    EXPECT_EQ(trace.idle_samples.size(), 150u);
    // Heating raises power well above the cooled idle level.
    EXPECT_GT(trace.power_curve_w[trace.cool_start - 1],
              2.0 * trace.power_curve_w.back());
}

TEST(Trainer, CoolingSamplesCarryTheRightVoltage)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 1);
    for (std::size_t vf : {0u, 2u, 4u}) {
        const auto trace = trainer.collectCoolingTrace(vf, 30, 40);
        for (const auto &s : trace.idle_samples)
            EXPECT_DOUBLE_EQ(s.voltage,
                             cfg.vf_table.state(vf).voltage);
    }
}

TEST(Trainer, AlphaEstimateNearGroundTruth)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 2);
    const auto idle = trainer.trainIdle();
    const double alpha = trainer.estimateAlpha(idle);
    EXPECT_NEAR(alpha, cfg.power.alpha_true, 0.25);
}

TEST(Trainer, AlphaEstimateStableAcrossSeeds)
{
    const auto cfg = sim::fx8320Config();
    Trainer a(cfg, 3), b(cfg, 4);
    const double alpha_a = a.estimateAlpha(a.trainIdle());
    const double alpha_b = b.estimateAlpha(b.trainIdle());
    EXPECT_NEAR(alpha_a, alpha_b, 0.1);
}

TEST(Trainer, CollectComboIsDeterministic)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 5);
    const auto &combo = comboNamed("456");
    const auto a = trainer.collectCombo(combo, 4, 30);
    const auto b = trainer.collectCombo(combo, 4, 30);
    ASSERT_EQ(a.recs.size(), b.recs.size());
    for (std::size_t i = 0; i < a.recs.size(); ++i)
        EXPECT_DOUBLE_EQ(a.recs[i].sensor_power_w,
                         b.recs[i].sensor_power_w);
}

TEST(Trainer, CollectComboHonoursCapAndVf)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 6);
    const auto t = trainer.collectCombo(comboNamed("470"), 0, 15);
    EXPECT_LE(t.recs.size(), 15u);
    EXPECT_EQ(t.vf_index, 0u);
    for (const auto &rec : t.recs)
        for (std::size_t vf : rec.cu_vf)
            EXPECT_EQ(vf, 0u);
}

TEST(Trainer, CollectComboDropsIdleTail)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 7);
    const auto t = trainer.collectCombo(comboNamed("456"), 4, 120);
    EXPECT_GT(t.recs.back().busy_cores, 0u);
}

TEST(Trainer, DatasetCoversCrossProduct)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 8);
    std::vector<const wl::Combination *> combos{&comboNamed("456"),
                                                &comboNamed("EP.x2")};
    const auto dataset = trainer.collectDataset(combos, {1, 4}, 25);
    ASSERT_EQ(dataset.size(), 4u);
    EXPECT_EQ(dataset[0].combo, combos[0]);
    EXPECT_EQ(dataset[0].vf_index, 1u);
    EXPECT_EQ(dataset[3].combo, combos[1]);
    EXPECT_EQ(dataset[3].vf_index, 4u);
}

TEST(Trainer, TrainAllReusesProvidedDataset)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 9);
    std::vector<const wl::Combination *> combos;
    for (const auto &c : wl::allCombinations())
        if (c.instances.size() == 1 && combos.size() < 8)
            combos.push_back(&c);
    std::vector<std::size_t> vfs{0, 1, 2, 3, 4};
    const auto dataset = trainer.collectDataset(combos, vfs, 40);

    const auto with = trainer.trainAll(combos, &dataset);
    const auto without = trainer.trainAll(combos);
    // Both paths must produce the same regression (same underlying
    // deterministic traces).
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        EXPECT_NEAR(with.dynamic.weights()[i],
                    without.dynamic.weights()[i],
                    std::abs(without.dynamic.weights()[i]) * 1e-9 +
                        1e-18)
            << i;
}

TEST(Trainer, TrainAllProducesUsableStack)
{
    const auto cfg = sim::fx8320Config();
    Trainer trainer(cfg, 10);
    std::vector<const wl::Combination *> combos;
    for (const auto &c : wl::allCombinations())
        if (c.instances.size() == 1 && combos.size() < 8)
            combos.push_back(&c);
    const auto models = trainer.trainAll(combos);
    EXPECT_TRUE(models.idle.trained());
    EXPECT_TRUE(models.dynamic.trained());
    EXPECT_TRUE(models.chip.trained());
    EXPECT_TRUE(models.pg.trained());
    EXPECT_TRUE(models.gg.trained());
    EXPECT_GT(models.alpha, 1.5);
    EXPECT_LT(models.alpha, 3.0);
}

TEST(Trainer, PhenomHasNoPgModel)
{
    Trainer trainer(sim::phenomIIConfig(), 11);
    std::vector<const wl::Combination *> combos;
    for (const auto &c : wl::allCombinations())
        if (c.instances.size() == 1 &&
            c.suite != wl::SuiteId::Spec && combos.size() < 8)
            combos.push_back(&c);
    const auto models = trainer.trainAll(combos);
    EXPECT_FALSE(models.pg.trained());
    EXPECT_TRUE(models.chip.trained());
}

TEST(TrainerDeath, PgSweepNeedsPgSupport)
{
    Trainer trainer(sim::phenomIIConfig(), 12);
    EXPECT_DEATH(trainer.collectPgSweeps(), "no power gating");
}

} // namespace
