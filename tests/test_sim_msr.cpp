/**
 * @file
 * Tests for the msr-tools facade: PERF_CTL/PERF_CTR encoding, counter
 * programming through wrmsr, and raw counting on a chip with the
 * built-in multiplexer disabled.
 */

#include <gtest/gtest.h>

#include "ppep/sim/chip.hpp"
#include "ppep/sim/msr.hpp"
#include "ppep/workloads/microbench.hpp"

namespace {

using namespace ppep::sim;

TEST(PerfEvtSel, EncodeDecodeRoundTrip)
{
    for (const auto e : allEvents()) {
        PerfEvtSel sel;
        sel.event_select = eventSelect(e);
        sel.unit_mask = 0x5A;
        sel.user = true;
        sel.os = false;
        sel.enable = true;
        const auto back = PerfEvtSel::decode(sel.encode());
        EXPECT_EQ(back.event_select, sel.event_select);
        EXPECT_EQ(back.unit_mask, sel.unit_mask);
        EXPECT_EQ(back.user, sel.user);
        EXPECT_EQ(back.os, sel.os);
        EXPECT_EQ(back.enable, sel.enable);
    }
}

TEST(PerfEvtSel, TwelveBitSelectSplitsAcrossFields)
{
    // 0x0c1 fits the low byte; a hypothetical 0x1c1 needs bits 35:32.
    PerfEvtSel sel;
    sel.event_select = 0x1c1;
    sel.enable = true;
    const std::uint64_t v = sel.encode();
    EXPECT_EQ(v & 0xFF, 0xC1u);
    EXPECT_EQ((v >> 32) & 0xF, 0x1u);
    EXPECT_EQ(PerfEvtSel::decode(v).event_select, 0x1c1);
}

TEST(EventSelect, TableICodesRoundTrip)
{
    EXPECT_EQ(eventSelect(Event::RetiredUop), 0x0c1);
    EXPECT_EQ(eventSelect(Event::MabWaitCycles), 0x069);
    for (const auto e : allEvents())
        EXPECT_EQ(eventFromSelect(eventSelect(e)), e);
    EXPECT_FALSE(eventFromSelect(0x123).has_value());
}

TEST(MsrDevice, ProgramsSlotThroughCtlWrite)
{
    PmcBank bank(6);
    MsrDevice msr(bank);
    PerfEvtSel sel;
    sel.event_select = eventSelect(Event::RetiredInst);
    sel.enable = true;
    msr.wrmsr(kMsrPerfCtlBase + 2 * 3, sel.encode()); // slot 3
    EXPECT_EQ(bank.programmed(3), Event::RetiredInst);
    EXPECT_EQ(msr.rdmsr(kMsrPerfCtlBase + 2 * 3), sel.encode());
}

TEST(MsrDevice, DisabledSelectClearsSlot)
{
    PmcBank bank(6);
    MsrDevice msr(bank);
    bank.program(0, Event::RetiredUop);
    PerfEvtSel off;
    off.event_select = eventSelect(Event::RetiredUop);
    off.enable = false;
    msr.wrmsr(kMsrPerfCtlBase, off.encode());
    EXPECT_FALSE(bank.programmed(0).has_value());
}

TEST(MsrDevice, UnknownSelectFreezesCounter)
{
    PmcBank bank(6);
    MsrDevice msr(bank);
    PerfEvtSel sel;
    sel.event_select = 0x3FF; // not modelled
    sel.enable = true;
    msr.wrmsr(kMsrPerfCtlBase, sel.encode());
    EXPECT_FALSE(bank.programmed(0).has_value());
}

TEST(MsrDevice, CtrReadWrite)
{
    PmcBank bank(6);
    MsrDevice msr(bank);
    msr.wrmsr(kMsrPerfCtrBase + 2 * 2, 12345);
    EXPECT_EQ(msr.rdmsr(kMsrPerfCtrBase + 2 * 2), 12345u);
    EXPECT_DOUBLE_EQ(bank.read(2), 12345.0);
}

TEST(MsrDeviceDeath, UnknownMsrFaults)
{
    PmcBank bank(6);
    MsrDevice msr(bank);
    EXPECT_DEATH(msr.wrmsr(0xC0010000, 0), "unknown MSR");
    EXPECT_DEATH(msr.rdmsr(0x10), "unknown MSR");
}

TEST(MsrOnChip, RawCountingWithoutMultiplexer)
{
    // The msr-tools workflow end to end: disable the daemon
    // multiplexer, program two selects by hand, run, read raw counts.
    Chip chip(fx8320Config(), 1);
    chip.setPmcAutoMultiplex(false);
    chip.setJob(0, ppep::workloads::makeBenchA());

    MsrDevice msr(chip.pmcBank(0));
    PerfEvtSel inst;
    inst.event_select = eventSelect(Event::RetiredInst);
    inst.enable = true;
    msr.wrmsr(kMsrPerfCtlBase, inst.encode());
    PerfEvtSel cyc;
    cyc.event_select = eventSelect(Event::ClocksNotHalted);
    cyc.enable = true;
    msr.wrmsr(kMsrPerfCtlBase + 2, cyc.encode());
    msr.wrmsr(kMsrPerfCtrBase, 0);
    msr.wrmsr(kMsrPerfCtrBase + 2, 0);

    double truth_inst = 0.0, truth_cyc = 0.0;
    for (int t = 0; t < 10; ++t) {
        const auto r = chip.step();
        truth_inst += r.truth.activity[0].instructions;
        truth_cyc += r.truth.activity[0].cycles;
    }
    // Raw counters match truth exactly: no multiplexing extrapolation.
    EXPECT_NEAR(static_cast<double>(msr.rdmsr(kMsrPerfCtrBase)),
                truth_inst, 1.0);
    EXPECT_NEAR(static_cast<double>(msr.rdmsr(kMsrPerfCtrBase + 2)),
                truth_cyc, 1.0);
}

TEST(MsrOnChipDeath, ReadPmcNeedsMultiplexer)
{
    Chip chip(fx8320Config(), 1);
    chip.setPmcAutoMultiplex(false);
    EXPECT_DEATH(chip.readPmc(0), "auto-multiplexing is off");
}

} // namespace
