/**
 * @file
 * Fleet runtime tests: the determinism contract (per-session telemetry
 * bit-identical at any thread count), shared-model correctness, fault
 * isolation between sessions, and pool survival when a session throws.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "ppep/model/ppep.hpp"
#include "ppep/runtime/async_telemetry.hpp"
#include "ppep/runtime/fleet.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::Fleet;
using runtime::FleetSessionSpec;
using runtime::FleetSpec;
using runtime::Session;

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

/** One cache dir per test process: the first fleet trains, every
 *  later one in the same process loads the same bytes, keeping the
 *  tests fast. Keyed by pid because ctest runs each TEST as its own
 *  process, concurrently — a shared dir would let one process
 *  remove_all entries a sibling is mid-publish on. */
const std::string &
cacheDir()
{
    static const std::string dir = [] {
        const std::string d = ::testing::TempDir() +
                              "ppep_fleet_cache_" +
                              std::to_string(::getpid());
        std::filesystem::remove_all(d);
        return d;
    }();
    return dir;
}

FleetSpec
baseSpec(std::size_t n_sessions)
{
    static const std::vector<std::string> programs = {"EP", "CG",
                                                      "458.sjeng"};
    FleetSpec spec;
    spec.cfg = sim::fx8320Config();
    spec.training_seed = 91;
    spec.training_combos = smallTrainingSet();
    spec.store.emplace(cacheDir());
    spec.warmup = 1;
    spec.intervals = 6;
    for (std::size_t i = 0; i < n_sessions; ++i) {
        FleetSessionSpec ss;
        ss.seed = 7 + i;
        ss.pg = (i % 2) == 0;
        ss.one_per_cu = {programs[i % programs.size()]};
        spec.sessions.push_back(std::move(ss));
    }
    return spec;
}

TEST(Fleet, BitIdenticalAcrossThreadCounts)
{
    Fleet fleet(baseSpec(5));
    const auto serial = fleet.run(1);
    ASSERT_EQ(serial.failed, 0u);
    ASSERT_EQ(serial.completed, 5u);

    // Sessions must also differ from each other (distinct seeds and
    // workloads), or digest equality below would be vacuous.
    for (std::size_t i = 1; i < serial.sessions.size(); ++i)
        EXPECT_NE(serial.sessions[i].telemetry_digest,
                  serial.sessions[0].telemetry_digest);

    for (const std::size_t threads : {2, 8}) {
        const auto parallel = fleet.run(threads);
        ASSERT_EQ(parallel.failed, 0u) << threads << " threads";
        for (std::size_t i = 0; i < serial.sessions.size(); ++i) {
            EXPECT_EQ(parallel.sessions[i].telemetry_digest,
                      serial.sessions[i].telemetry_digest)
                << "session " << i << " at " << threads << " threads";
            EXPECT_EQ(parallel.sessions[i].name,
                      serial.sessions[i].name);
        }
    }
}

TEST(Fleet, SharedModelsMatchOwnedModels)
{
    const auto spec = baseSpec(1);
    Fleet fleet(spec);
    fleet.prepare();
    // Both accessors hand out const references: a session can only
    // read the shared state.
    const model::TrainedModels &models = fleet.models();
    const model::Ppep &ppep = fleet.ppep();

    runtime::DigestSink shared_digest;
    auto shared = Session::builder(spec.cfg)
                      .seed(7)
                      .onePerCu({"EP"})
                      .sharedModels(models, ppep)
                      .sink(shared_digest)
                      .build();
    EXPECT_EQ(shared.drive(6), 6u);

    runtime::DigestSink owned_digest;
    auto owned = Session::builder(spec.cfg)
                     .seed(7)
                     .onePerCu({"EP"})
                     .models(models)
                     .sink(owned_digest)
                     .build();
    EXPECT_EQ(owned.drive(6), 6u);

    EXPECT_EQ(shared_digest.intervals(), 6u);
    EXPECT_EQ(shared_digest.digest(), owned_digest.digest());
}

TEST(Fleet, PerSessionFaultPlansAreIsolated)
{
    Fleet clean(baseSpec(3));
    const auto base = clean.run(2);
    ASSERT_EQ(base.failed, 0u);

    auto spec = baseSpec(3);
    spec.sessions[1].faults = sim::FaultPlan::parse(
        "msr=0.3,sensor_drop=0.2,diode_spike=0.1,jitter=0.3");
    Fleet faulty(std::move(spec));
    const auto mixed = faulty.run(2);
    ASSERT_EQ(mixed.failed, 0u);

    // The faulted session's telemetry changes; its neighbours replay
    // the clean fleet bit for bit.
    EXPECT_NE(mixed.sessions[1].telemetry_digest,
              base.sessions[1].telemetry_digest);
    EXPECT_EQ(mixed.sessions[0].telemetry_digest,
              base.sessions[0].telemetry_digest);
    EXPECT_EQ(mixed.sessions[2].telemetry_digest,
              base.sessions[2].telemetry_digest);
}

TEST(Fleet, ThrowingSessionDoesNotSinkThePool)
{
    auto spec = baseSpec(4);
    spec.sessions[2].governor = [](const runtime::ModelContext &)
        -> std::unique_ptr<ppep::governor::Governor> {
        class Throwing : public ppep::governor::Governor
        {
          public:
            std::vector<std::size_t>
            decide(const trace::IntervalRecord &, double) override
            {
                throw std::runtime_error("injected governor failure");
            }
            std::string name() const override { return "throwing"; }
        };
        return std::make_unique<Throwing>();
    };

    Fleet fleet(std::move(spec));
    const auto res = fleet.run(2);
    EXPECT_EQ(res.completed, 3u);
    EXPECT_EQ(res.failed, 1u);
    EXPECT_FALSE(res.sessions[2].completed);
    EXPECT_NE(res.sessions[2].error.find("injected governor failure"),
              std::string::npos);
    for (const std::size_t i : {0, 1, 3}) {
        EXPECT_TRUE(res.sessions[i].completed) << "session " << i;
        EXPECT_EQ(res.sessions[i].intervals, 6u);
    }
}

/** 5 sessions over 3 distinct platforms, 2 tenants on the first. */
FleetSpec
heteroSpec()
{
    FleetSpec spec = baseSpec(5);
    // Sessions 0-1 stay on the fleet-default FX-8320; 2-3 bring a
    // Phenom II, 4 the NB-DVFS variant. The first FX chip is split
    // between two tenants, whose jobs replace its one_per_cu.
    spec.sessions[2].cfg = sim::phenomIIConfig();
    spec.sessions[3].cfg = sim::phenomIIConfig();
    spec.sessions[4].cfg = sim::fx8320NbDvfsConfig();
    // The Phenom II cannot power-gate; baseSpec's pg alternation only
    // applies to the FX sessions.
    spec.sessions[2].pg = false;
    spec.sessions[3].pg = false;
    spec.sessions[0].one_per_cu.clear();
    spec.sessions[0].tenants = {
        {"alpha", {0, 1, 2, 3}, {{0, "EP", true}}},
        {"beta", {4, 5, 6, 7}, {{4, "CG", true}}},
    };
    return spec;
}

TEST(Fleet, HeterogeneousSharesEntriesPerConfig)
{
    Fleet fleet(heteroSpec());
    fleet.prepare();

    // Three distinct platforms -> three registry entries, resolved by
    // fingerprint: fingerprint-identical sessions share one Ppep.
    EXPECT_EQ(fleet.modelEntryCount(), 3u);
    EXPECT_EQ(fleet.entryIndexOf(0), fleet.entryIndexOf(1));
    EXPECT_EQ(fleet.entryIndexOf(2), fleet.entryIndexOf(3));
    EXPECT_NE(fleet.entryIndexOf(0), fleet.entryIndexOf(2));
    EXPECT_NE(fleet.entryIndexOf(0), fleet.entryIndexOf(4));
    EXPECT_NE(fleet.entryIndexOf(2), fleet.entryIndexOf(4));
    EXPECT_EQ(&fleet.ppepOf(0), &fleet.ppepOf(1));
    EXPECT_NE(&fleet.ppepOf(0), &fleet.ppepOf(2));

    // models()/ppep() still address the default-config entry.
    EXPECT_EQ(&fleet.ppep(), &fleet.ppepOf(0));
}

TEST(Fleet, HeterogeneousBitIdenticalAcrossThreadCounts)
{
    Fleet fleet(heteroSpec());
    const auto serial = fleet.run(1);
    ASSERT_EQ(serial.failed, 0u);
    ASSERT_EQ(serial.completed, 5u);

    for (std::size_t i = 1; i < serial.sessions.size(); ++i)
        EXPECT_NE(serial.sessions[i].telemetry_digest,
                  serial.sessions[0].telemetry_digest);

    for (const std::size_t threads : {2, 8}) {
        const auto parallel = fleet.run(threads);
        ASSERT_EQ(parallel.failed, 0u) << threads << " threads";
        for (std::size_t i = 0; i < serial.sessions.size(); ++i)
            EXPECT_EQ(parallel.sessions[i].telemetry_digest,
                      serial.sessions[i].telemetry_digest)
                << "session " << i << " at " << threads << " threads";
    }
}

TEST(Fleet, HeterogeneousCsvHeadersMatchEachConfig)
{
    namespace fs = std::filesystem;
    const std::string dir = ::testing::TempDir() + "ppep_fleet_hetero";
    fs::remove_all(dir);

    auto spec = heteroSpec();
    spec.csv_dir = dir;
    Fleet fleet(std::move(spec));
    ASSERT_EQ(fleet.run(2).failed, 0u);

    const auto header = [&](const std::string &name) {
        std::ifstream in(dir + "/" + name + ".csv");
        EXPECT_TRUE(in.is_open()) << name;
        std::string line;
        std::getline(in, line);
        return line;
    };

    // FX-8320: 4 CUs x 2 cores; Phenom II: 6 CUs x 1 core. Each
    // session's columns must come from its own config, and the tenant
    // session alone grows attribution columns.
    const std::string fx_tenants = header("s0");
    EXPECT_NE(fx_tenants.find("cu3_vf"), std::string::npos);
    EXPECT_EQ(fx_tenants.find("cu4_vf"), std::string::npos);
    EXPECT_NE(fx_tenants.find("core7_ips"), std::string::npos);
    EXPECT_NE(fx_tenants.find("tenant_alpha_w"), std::string::npos);
    EXPECT_NE(fx_tenants.find("tenant_beta_w"), std::string::npos);
    EXPECT_NE(fx_tenants.find("unattributed_w"), std::string::npos);

    const std::string fx_plain = header("s1");
    EXPECT_EQ(fx_plain.find("tenant_"), std::string::npos);

    const std::string phenom = header("s2");
    EXPECT_NE(phenom.find("cu5_vf"), std::string::npos);
    EXPECT_NE(phenom.find("core5_ips"), std::string::npos);
    EXPECT_EQ(phenom.find("core6_ips"), std::string::npos);
    EXPECT_EQ(phenom.find("tenant_"), std::string::npos);
}

TEST(Fleet, AsyncTelemetryMatchesSyncCsv)
{
    namespace fs = std::filesystem;
    const std::string sync_dir =
        ::testing::TempDir() + "ppep_fleet_sync";
    const std::string async_dir =
        ::testing::TempDir() + "ppep_fleet_async";
    fs::remove_all(sync_dir);
    fs::remove_all(async_dir);

    auto sync_spec = baseSpec(2);
    sync_spec.csv_dir = sync_dir;
    Fleet sync_fleet(std::move(sync_spec));
    ASSERT_EQ(sync_fleet.run(2).failed, 0u);

    auto async_spec = baseSpec(2);
    async_spec.csv_dir = async_dir;
    async_spec.async_telemetry = true;
    Fleet async_fleet(std::move(async_spec));
    ASSERT_EQ(async_fleet.run(2).failed, 0u);

    // The async writer must not reorder, drop, or alter rows. The
    // decision_latency_us column is wall clock, so it is located from
    // the (config-derived) header and blanked before comparing.
    const auto normalized = [](const std::string &path) {
        std::ifstream in(path);
        EXPECT_TRUE(in.is_open()) << path;
        std::string out, line;
        std::size_t latency_col = std::string::npos;
        while (std::getline(in, line)) {
            std::vector<std::string> fields;
            std::stringstream row(line);
            for (std::string f; std::getline(row, f, ',');)
                fields.push_back(f);
            if (latency_col == std::string::npos)
                for (std::size_t i = 0; i < fields.size(); ++i)
                    if (fields[i] == "decision_latency_us")
                        latency_col = i;
            EXPECT_NE(latency_col, std::string::npos) << path;
            if (fields.size() > latency_col)
                fields[latency_col] = "x";
            for (std::size_t i = 0; i < fields.size(); ++i)
                out += (i ? "," : "") + fields[i];
            out += '\n';
        }
        return out;
    };
    for (const std::string name : {"s0", "s1"}) {
        const auto sa = normalized(sync_dir + "/" + name + ".csv");
        const auto sb = normalized(async_dir + "/" + name + ".csv");
        EXPECT_GT(sa.size(), 100u) << name;
        EXPECT_EQ(sa, sb) << name;
    }
}

TEST(Fleet, AsyncTelemetryAccountsEncodeTime)
{
    trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.sensor_power_w = 40.0;
    rec.diode_temp_k = 320.0;
    rec.pmc.resize(1);
    const std::vector<std::size_t> cu_vf = {1, 2};
    runtime::IntervalTelemetry t;
    t.rec = &rec;
    t.cu_vf = &cu_vf;

    std::ostringstream out;
    runtime::CsvSink csv(out);
    runtime::AsyncTelemetrySink async(csv, 4);
    EXPECT_EQ(async.encodedIntervals(), 0u);
    for (std::size_t i = 0; i < 16; ++i) {
        t.index = i;
        async.onInterval(t);
    }
    async.flush(); // drained: every interval has been handed off
    EXPECT_EQ(async.encodedIntervals(), 16u);
    EXPECT_GE(async.encodeSeconds(), 0.0);
    async.close();
    EXPECT_EQ(async.encodedIntervals(), 16u);
}

} // namespace
