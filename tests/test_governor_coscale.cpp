/**
 * @file
 * Tests for the CoScale-lite coordinated core+NB governor, running
 * closed-loop against the simulator's real NB DVFS.
 */

#include <gtest/gtest.h>

#include "ppep/governor/coscale_lite.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/util/stats.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::governor;
namespace sim = ppep::sim;
namespace wl = ppep::workloads;
namespace model = ppep::model;

struct Shared
{
    sim::ChipConfig cfg = sim::fx8320Config();
    model::TrainedModels models;

    Shared()
    {
        model::Trainer trainer(cfg, 91);
        std::vector<const wl::Combination *> training;
        for (const auto &c : wl::allCombinations())
            if (c.instances.size() == 1 && training.size() < 14)
                training.push_back(&c);
        models = trainer.trainAll(training);
    }

    static const Shared &
    get()
    {
        static const Shared s;
        return s;
    }
};

std::vector<GovernorStep>
runUnder(const std::string &program, double slowdown_budget,
         std::size_t intervals, CoScaleLiteGovernor **out_gov = nullptr)
{
    const auto &s = Shared::get();
    static std::unique_ptr<CoScaleLiteGovernor> gov; // keep alive
    static std::unique_ptr<model::Ppep> ppep;
    ppep = std::make_unique<model::Ppep>(s.cfg, s.models.chip,
                                         s.models.pg);
    gov = std::make_unique<CoScaleLiteGovernor>(s.cfg, *ppep,
                                                slowdown_budget);
    sim::Chip chip(s.cfg, 92);
    chip.setPowerGatingEnabled(true);
    chip.setJob(0, wl::Suite::byName(program).makeLoopingJob());
    GovernorLoop loop(chip, *gov);
    auto steps = loop.run(intervals, CapSchedule::unlimited());
    if (out_gov)
        *out_gov = gov.get();
    return steps;
}

TEST(CoScaleLite, CpuBoundGetsLowNb)
{
    // A CPU-bound thread barely touches the NB: the low NB point saves
    // energy nearly for free, so the governor should take it.
    CoScaleLiteGovernor *gov = nullptr;
    const auto steps = runUnder("458.sjeng", 0.10, 12, &gov);
    ASSERT_NE(gov, nullptr);
    EXPECT_TRUE(gov->lastNbLow());
    // And the chip really runs there (closed loop).
    EXPECT_LT(steps.back().rec.nb_vf.freq_ghz, 2.0);
}

TEST(CoScaleLite, MemoryBoundKeepsNbHighUnderTightBudget)
{
    // A memory-bound thread pays ~1.5x leading-load time at NB-low;
    // with a 5% budget the governor must keep the NB fast.
    CoScaleLiteGovernor *gov = nullptr;
    runUnder("429.mcf", 0.05, 12, &gov);
    ASSERT_NE(gov, nullptr);
    EXPECT_FALSE(gov->lastNbLow());
}

TEST(CoScaleLite, ZeroBudgetRunsFlatOut)
{
    CoScaleLiteGovernor *gov = nullptr;
    const auto steps = runUnder("CG", 0.0, 10, &gov);
    ASSERT_NE(gov, nullptr);
    EXPECT_EQ(steps.back().cu_vf[0],
              Shared::get().cfg.vf_table.top());
    EXPECT_FALSE(gov->lastNbLow());
}

TEST(CoScaleLite, GenerousBudgetDropsCoreVf)
{
    CoScaleLiteGovernor *gov = nullptr;
    const auto steps = runUnder("458.sjeng", 0.6, 12, &gov);
    ASSERT_NE(gov, nullptr);
    EXPECT_LT(steps.back().cu_vf[0],
              Shared::get().cfg.vf_table.top());
}

TEST(CoScaleLite, SavesEnergyWithinSlowdownBudget)
{
    // Closed-loop verdict from the *sensor*: versus running flat out,
    // the 10%-budget policy must use measurably less energy per
    // instruction, and the measured slowdown must stay near budget.
    const auto flat = runUnder("458.sjeng", 0.0, 25);
    const auto saver = runUnder("458.sjeng", 0.10, 25);

    auto totals = [](const std::vector<GovernorStep> &steps) {
        double joules = 0.0, inst = 0.0;
        // Skip the first two intervals (policy still settling).
        for (std::size_t i = 2; i < steps.size(); ++i) {
            joules += steps[i].rec.sensor_power_w *
                      steps[i].rec.duration_s;
            inst +=
                steps[i].rec.pmcTotal(sim::Event::RetiredInst);
        }
        return std::pair{joules / inst, inst};
    };
    const auto [epi_flat, inst_flat] = totals(flat);
    const auto [epi_saver, inst_saver] = totals(saver);
    EXPECT_LT(epi_saver, epi_flat * 0.93); // >=7% energy/inst saving
    EXPECT_GT(inst_saver, inst_flat * 0.85); // slowdown near budget
}

TEST(CoScaleLite, IdleChipParksLow)
{
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    CoScaleLiteGovernor gov(s.cfg, ppep, 0.1);
    sim::Chip chip(s.cfg, 93);
    GovernorLoop loop(chip, gov);
    const auto steps = loop.run(3, CapSchedule::unlimited());
    EXPECT_EQ(steps.back().cu_vf[0], 0u);
}

TEST(CoScaleLiteDeath, BadBudgetRejected)
{
    const auto &s = Shared::get();
    model::Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    EXPECT_DEATH(CoScaleLiteGovernor(s.cfg, ppep, 1.0),
                 "slowdown budget");
}

} // namespace
