/**
 * @file
 * Tests for the custom-workload ProfileBuilder and the shared phase
 * derivation.
 */

#include <gtest/gtest.h>

#include "ppep/sim/chip.hpp"
#include "ppep/workloads/builder.hpp"

namespace {

using namespace ppep::workloads;

TEST(DerivePhase, ProducesValidPhases)
{
    for (double mem : {0.0, 0.3, 0.7, 1.0})
        for (double dram : {0.0, 0.5, 1.0}) {
            const auto p =
                derivePhase(mem, dram, 0.3, 0.15, 0.03, 0.4, 1e9);
            EXPECT_NO_FATAL_FAILURE(p.validate());
        }
}

TEST(DerivePhase, MemoryIntensityDrivesMemoryRates)
{
    const auto cpu = derivePhase(0.05, 0.3, 0.1, 0.15, 0.03, 0.3, 1e9);
    const auto mem = derivePhase(0.90, 0.3, 0.1, 0.15, 0.03, 0.3, 1e9);
    EXPECT_GT(mem.l2req_per_inst, 3.0 * cpu.l2req_per_inst);
    EXPECT_GT(mem.leading_per_inst, 3.0 * cpu.leading_per_inst);
    EXPECT_GT(mem.dcache_per_inst, cpu.dcache_per_inst);
}

TEST(DerivePhase, DramShareDrivesL3MissRate)
{
    const auto l3_heavy = derivePhase(0.5, 0.0, 0.1, 0.1, 0.02, 0.3, 1e9);
    const auto dram_heavy =
        derivePhase(0.5, 1.0, 0.1, 0.1, 0.02, 0.3, 1e9);
    EXPECT_LT(l3_heavy.l3_miss_rate, 0.2);
    EXPECT_GT(dram_heavy.l3_miss_rate, 0.85);
}

TEST(DerivePhase, ClampsOutOfRangeInputs)
{
    const auto p = derivePhase(5.0, -1.0, 0.1, 2.0, 3.0, 0.3, 1e9);
    EXPECT_NO_FATAL_FAILURE(p.validate());
    EXPECT_LE(p.branch_per_inst, 0.5);
    EXPECT_DOUBLE_EQ(p.l3_miss_rate, 0.15); // dram clamped to 0
}

TEST(Builder, KnobsPersistAcrossPhases)
{
    ProfileBuilder b("custom");
    b.memoryIntensity(0.8).dramShare(0.9).addPhase(1e9);
    b.memoryIntensity(0.1).addPhase(2e9); // dramShare persists
    ASSERT_EQ(b.phaseCount(), 2u);
    EXPECT_GT(b.phases()[0].l2req_per_inst,
              b.phases()[1].l2req_per_inst);
    EXPECT_DOUBLE_EQ(b.phases()[0].l3_miss_rate,
                     b.phases()[1].l3_miss_rate);
    EXPECT_DOUBLE_EQ(b.phases()[1].inst_count, 2e9);
}

TEST(Builder, MakeJobCarriesName)
{
    ProfileBuilder b("my-app");
    b.addPhase(1e8);
    const auto job = b.makeJob();
    EXPECT_EQ(job->name(), "my-app");
    EXPECT_FALSE(job->finished());
}

TEST(Builder, LoopingJobLoops)
{
    ProfileBuilder b("loop-app");
    b.addPhase(1e7);
    auto job = b.makeLoopingJob();
    job->advance(5e7);
    EXPECT_FALSE(job->finished());
}

TEST(Builder, CustomJobRunsOnChip)
{
    ProfileBuilder b("chip-app");
    b.memoryIntensity(0.6).fpuPerInst(0.4).addPhase(5e8);
    ppep::sim::Chip chip(ppep::sim::fx8320Config(), 1);
    chip.setJob(0, b.makeJob());
    const auto r = chip.step();
    EXPECT_GT(r.truth.activity[0].instructions, 1e6);
    EXPECT_GT(r.truth.power.core_dynamic[0], 0.5);
}

TEST(BuilderDeath, RejectsBadKnobs)
{
    ProfileBuilder b("bad");
    EXPECT_DEATH(b.memoryIntensity(1.5), "out of");
    EXPECT_DEATH(b.branchRate(0.9), "out of");
    EXPECT_DEATH(b.resourceStallCpi(0.0), "floor");
    EXPECT_DEATH(b.addPhase(0.0), "instructions");
}

TEST(BuilderDeath, EmptyProfileCannotBuild)
{
    ProfileBuilder b("empty");
    EXPECT_DEATH(b.makeJob(), "no phases");
}

TEST(BuilderDeath, EmptyNameRejected)
{
    EXPECT_DEATH(ProfileBuilder(""), "needs a name");
}

} // namespace
