/**
 * @file
 * Tests for the deterministic hardware fault-injection layer: plan
 * parsing, injector determinism, the strict opt-in guarantee (a chip
 * with an all-zero plan is bit-identical to one with no plan at all),
 * and each fault mechanism at the chip boundary it corrupts.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/sim/chip.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using sim::FaultInjector;
using sim::FaultPlan;

sim::Chip
busyChip(std::uint64_t seed = 7)
{
    sim::Chip chip(sim::fx8320Config(), seed);
    workloads::launch(chip, workloads::replicate("EP", 4), true);
    return chip;
}

// --- FaultPlan ----------------------------------------------------------

TEST(FaultPlan, DefaultIsAllZero)
{
    const FaultPlan plan;
    EXPECT_FALSE(plan.any());
    EXPECT_EQ(plan.describe(), "no faults");
}

TEST(FaultPlan, ParseFillsNamedFields)
{
    const auto plan = FaultPlan::parse(
        "msr=0.02,wrap=26,saturate=0.001,mux=0.01,diode_spike=0.005,"
        "diode_stuck=0.002,diode_stuck_ticks=10,diode_drop=0.003,"
        "sensor_spike=0.004,sensor_drop=0.01,vf_reject=0.05,"
        "vf_delay=0.06,vf_delay_ticks=4,jitter=0.1,jitter_max=3");
    EXPECT_TRUE(plan.any());
    EXPECT_DOUBLE_EQ(plan.msr_read_fail_p, 0.02);
    EXPECT_EQ(plan.pmc_wrap_bits, 26u);
    EXPECT_DOUBLE_EQ(plan.pmc_slot_saturate_p, 0.001);
    EXPECT_DOUBLE_EQ(plan.mux_dropout_p, 0.01);
    EXPECT_DOUBLE_EQ(plan.diode_spike_p, 0.005);
    EXPECT_DOUBLE_EQ(plan.diode_stuck_p, 0.002);
    EXPECT_EQ(plan.diode_stuck_ticks, 10u);
    EXPECT_DOUBLE_EQ(plan.diode_dropout_p, 0.003);
    EXPECT_DOUBLE_EQ(plan.sensor_spike_p, 0.004);
    EXPECT_DOUBLE_EQ(plan.sensor_dropout_p, 0.01);
    EXPECT_DOUBLE_EQ(plan.vf_reject_p, 0.05);
    EXPECT_DOUBLE_EQ(plan.vf_delay_p, 0.06);
    EXPECT_EQ(plan.vf_delay_ticks, 4u);
    EXPECT_DOUBLE_EQ(plan.tick_jitter_p, 0.1);
    EXPECT_EQ(plan.tick_jitter_max, 3u);
}

TEST(FaultPlan, EmptySpecIsAllZero)
{
    EXPECT_FALSE(FaultPlan::parse("").any());
}

TEST(FaultPlanDeath, UnknownKeyIsFatal)
{
    EXPECT_DEATH(FaultPlan::parse("bogus=1"), "unknown fault spec");
    EXPECT_DEATH(FaultPlan::parse("msr"), "no '='");
}

TEST(FaultPlan, DescribeListsNonzeroRates)
{
    const auto plan = FaultPlan::parse("msr=0.5,jitter=0.25");
    const auto desc = plan.describe();
    EXPECT_NE(desc.find("msr=0.5"), std::string::npos);
    EXPECT_NE(desc.find("jitter=0.25"), std::string::npos);
    EXPECT_EQ(desc.find("sensor"), std::string::npos);
}

// --- injector determinism ----------------------------------------------

TEST(FaultInjector, SamePlanSameSeedSameDecisions)
{
    const auto plan = FaultPlan::parse("msr=0.3,mux=0.2,jitter=0.5");
    FaultInjector a(plan, 99), b(plan, 99);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.msrReadFails(), b.msrReadFails());
        EXPECT_EQ(a.muxTickDropped(), b.muxTickDropped());
        EXPECT_EQ(a.jitterTicks(10), b.jitterTicks(10));
    }
    EXPECT_EQ(a.counters().total(), b.counters().total());
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    const auto plan = FaultPlan::parse("msr=0.5");
    FaultInjector a(plan, 1), b(plan, 2);
    bool diverged = false;
    for (int i = 0; i < 200 && !diverged; ++i)
        diverged = a.msrReadFails() != b.msrReadFails();
    EXPECT_TRUE(diverged);
}

TEST(FaultInjector, ZeroRatesNeverFire)
{
    FaultInjector inj(FaultPlan{}, 5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.msrReadFails());
        EXPECT_FALSE(inj.muxTickDropped());
        EXPECT_FALSE(inj.saturatedSlot(6).has_value());
        EXPECT_DOUBLE_EQ(inj.corruptDiode(300.0), 300.0);
        EXPECT_DOUBLE_EQ(inj.corruptSensor(50.0), 50.0);
        EXPECT_EQ(inj.onVfWrite(), FaultInjector::VfWrite::Apply);
        EXPECT_EQ(inj.jitterTicks(10), 10u);
    }
    EXPECT_EQ(inj.counters().total(), 0u);
}

// --- the opt-in guarantee ----------------------------------------------

TEST(FaultChip, AllZeroPlanIsBitIdenticalToNoPlan)
{
    // The acceptance bar for the whole layer: installing an injector
    // with every rate at zero must not perturb one bit of the run.
    auto plain = busyChip();
    auto faulted = busyChip();
    faulted.setFaultPlan(FaultPlan{}, 12345);
    ASSERT_NE(faulted.faultInjector(), nullptr);

    trace::Collector ca(plain), cb(faulted);
    for (int i = 0; i < 5; ++i) {
        const auto ra = ca.collectInterval();
        const auto rb = cb.collectInterval();
        EXPECT_EQ(ra.sensor_power_w, rb.sensor_power_w);
        EXPECT_EQ(ra.diode_temp_k, rb.diode_temp_k);
        EXPECT_EQ(ra.true_power_w, rb.true_power_w);
        ASSERT_EQ(ra.pmc.size(), rb.pmc.size());
        for (std::size_t c = 0; c < ra.pmc.size(); ++c)
            for (std::size_t e = 0; e < sim::kNumEvents; ++e)
                EXPECT_EQ(ra.pmc[c][e], rb.pmc[c][e])
                    << "core " << c << " event " << e;
    }
    EXPECT_EQ(faulted.faultInjector()->counters().total(), 0u);
    EXPECT_EQ(faulted.pmcWrapEvents(), 0u);
}

// --- chip-boundary mechanisms ------------------------------------------

TEST(FaultChip, MsrReadFailuresMakeTryReadPmcFail)
{
    auto chip = busyChip();
    chip.setFaultPlan(FaultPlan::parse("msr=1"), 1);
    for (int t = 0; t < 10; ++t)
        chip.step();
    sim::EventVector out{};
    EXPECT_FALSE(chip.tryReadPmc(0, out));
    // The multiplexer keeps accumulating across the failed read, so a
    // later retry covers the whole window.
    EXPECT_EQ(chip.pmcTicksSinceReset(0), 10u);
    EXPECT_GT(chip.faultInjector()->counters().msr_read_failures, 0u);
}

TEST(FaultChip, TryReadPmcMatchesReadPmcWithoutFaults)
{
    auto a = busyChip();
    auto b = busyChip();
    for (int t = 0; t < 10; ++t) {
        a.step();
        b.step();
    }
    sim::EventVector got{};
    ASSERT_TRUE(a.tryReadPmc(2, got));
    const auto want = b.readPmc(2);
    for (std::size_t e = 0; e < sim::kNumEvents; ++e)
        EXPECT_EQ(got[e], want[e]);
}

TEST(FaultChip, RejectedVfWriteKeepsOldState)
{
    auto chip = busyChip();
    chip.setFaultPlan(FaultPlan::parse("vf_reject=1"), 1);
    const auto before = chip.cuVf(0);
    chip.setCuVf(0, before == 0 ? 1 : 0);
    EXPECT_EQ(chip.cuVf(0), before);
    EXPECT_GT(chip.faultInjector()->counters().vf_rejects, 0u);
}

TEST(FaultChip, DelayedVfWriteLandsAfterConfiguredTicks)
{
    auto chip = busyChip();
    chip.setFaultPlan(
        FaultPlan::parse("vf_delay=1,vf_delay_ticks=3"), 1);
    const auto before = chip.cuVf(0);
    const std::size_t target = before == 0 ? 1 : 0;
    chip.setCuVf(0, target);
    EXPECT_EQ(chip.cuVf(0), before); // not yet applied
    for (int t = 0; t < 3; ++t) {
        chip.step();
        EXPECT_EQ(chip.cuVf(0), before); // counting down
    }
    chip.step();
    EXPECT_EQ(chip.cuVf(0), target); // latency expired, write landed
    EXPECT_GT(chip.faultInjector()->counters().vf_delays, 0u);
}

TEST(FaultChip, SensorDropoutReadsNaN)
{
    auto chip = busyChip();
    chip.setFaultPlan(FaultPlan::parse("sensor_drop=1"), 1);
    const auto tick = chip.step();
    EXPECT_TRUE(std::isnan(tick.sensor_power_w));
    EXPECT_TRUE(std::isfinite(tick.truth.power.total)); // truth intact
}

TEST(FaultChip, StuckDiodeHoldsItsReading)
{
    auto chip = busyChip();
    chip.setFaultPlan(
        FaultPlan::parse("diode_stuck=1,diode_stuck_ticks=5"), 1);
    const double first = chip.step().diode_temp_k;
    for (int t = 0; t < 5; ++t)
        EXPECT_DOUBLE_EQ(chip.step().diode_temp_k, first);
    EXPECT_EQ(chip.faultInjector()->counters().diode_stuck_ticks, 5u);
}

TEST(FaultChip, DiodeDropoutReadsZeroKelvin)
{
    auto chip = busyChip();
    chip.setFaultPlan(FaultPlan::parse("diode_drop=1"), 1);
    EXPECT_DOUBLE_EQ(chip.step().diode_temp_k, 0.0);
}

TEST(FaultChip, SaturatedSlotReadsFullScale)
{
    auto chip = busyChip();
    chip.setFaultPlan(FaultPlan::parse("wrap=16,saturate=1"), 1);
    for (int t = 0; t < 10; ++t)
        chip.step();
    EXPECT_GT(chip.faultInjector()->counters().pmc_slot_saturations,
              0u);
    // Saturated slots at full scale are exactly the corruption the
    // Sampler's CPI window is built to catch; here we only assert the
    // mechanism fired and the read stays finite.
    const auto counts = chip.readPmc(0);
    for (double v : counts)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(FaultChip, WrapBitsBoundTheCounters)
{
    auto chip = busyChip();
    chip.setFaultPlan(FaultPlan::parse("wrap=16"), 1);
    for (int t = 0; t < 10; ++t)
        chip.step();
    EXPECT_GT(chip.pmcWrapEvents(), 0u); // cycles wrap a 16-bit counter
}

TEST(FaultInjector, JitterStaysWithinBounds)
{
    FaultInjector inj(FaultPlan::parse("jitter=1,jitter_max=2"), 3);
    bool moved = false;
    for (int i = 0; i < 200; ++i) {
        const auto t = inj.jitterTicks(10);
        EXPECT_GE(t, 8u);
        EXPECT_LE(t, 12u);
        moved |= t != 10;
    }
    EXPECT_TRUE(moved);
    EXPECT_EQ(inj.counters().jittered_intervals, 200u);
}

TEST(FaultInjector, JitterNeverReturnsZeroTicks)
{
    FaultInjector inj(FaultPlan::parse("jitter=1,jitter_max=5"), 3);
    for (int i = 0; i < 200; ++i)
        EXPECT_GE(inj.jitterTicks(1), 1u);
}

// --- gradual drift ------------------------------------------------------

TEST(FaultPlan, ParseFillsDriftFields)
{
    const auto plan = FaultPlan::parse(
        "power_drift=0.001,power_drift_bias=0.0002,sensor_drift=0.003,"
        "sensor_drift_bias=0.0004,drift_clamp=0.25");
    EXPECT_TRUE(plan.any());
    EXPECT_DOUBLE_EQ(plan.power_drift_rate, 0.001);
    EXPECT_DOUBLE_EQ(plan.power_drift_bias, 0.0002);
    EXPECT_DOUBLE_EQ(plan.sensor_drift_rate, 0.003);
    EXPECT_DOUBLE_EQ(plan.sensor_drift_bias, 0.0004);
    EXPECT_DOUBLE_EQ(plan.drift_clamp, 0.25);
    const auto desc = plan.describe();
    EXPECT_NE(desc.find("power_drift=0.001"), std::string::npos);
    EXPECT_NE(desc.find("sensor_drift_bias=0.0004"), std::string::npos);
}

TEST(FaultInjector, DriftGainsStartAtUnity)
{
    FaultInjector inj(FaultPlan::parse("power_drift_bias=0.001"), 5);
    EXPECT_TRUE(inj.drifting());
    EXPECT_DOUBLE_EQ(inj.powerGain(), 1.0);
    EXPECT_DOUBLE_EQ(inj.sensorGain(), 1.0);
}

TEST(FaultInjector, BiasOnlyDriftConsumesNoRandomness)
{
    // A deterministic drift (rate 0) must not draw from the fault RNG:
    // adding it to a plan cannot perturb any other fault stream.
    const auto base = FaultPlan::parse("msr=0.3");
    auto drifted = base;
    drifted.power_drift_bias = 1e-4;
    drifted.sensor_drift_bias = -1e-4;
    FaultInjector a(base, 42), b(drifted, 42);
    for (int i = 0; i < 500; ++i) {
        b.advanceDrift();
        EXPECT_EQ(a.msrReadFails(), b.msrReadFails()) << "tick " << i;
    }
}

TEST(FaultInjector, DriftClampBoundsTheGain)
{
    auto plan = FaultPlan::parse("power_drift_bias=0.01,drift_clamp=0.2");
    plan.sensor_drift_bias = -0.01; // negative bias: programmatic only
    FaultInjector inj(plan, 7);
    for (int i = 0; i < 1000; ++i)
        inj.advanceDrift();
    EXPECT_NEAR(inj.powerGain(), std::exp(0.2), 1e-12);
    EXPECT_NEAR(inj.sensorGain(), std::exp(-0.2), 1e-12);
    EXPECT_EQ(inj.counters().drift_ticks, 1000u);
}

TEST(FaultInjector, SeededDriftWalkIsDeterministic)
{
    const auto plan =
        FaultPlan::parse("power_drift=0.001,sensor_drift=0.002");
    FaultInjector a(plan, 11), b(plan, 11);
    for (int i = 0; i < 300; ++i) {
        a.advanceDrift();
        b.advanceDrift();
        EXPECT_EQ(a.powerGain(), b.powerGain());
        EXPECT_EQ(a.sensorGain(), b.sensorGain());
    }
}

TEST(FaultChip, PowerDriftScalesGroundTruthAndSensor)
{
    auto plain = busyChip();
    auto drifted = busyChip();
    drifted.setFaultPlan(
        FaultPlan::parse("power_drift_bias=0.001,drift_clamp=0.4"), 1);
    trace::Collector ca(plain), cb(drifted);
    double ratio = 0.0;
    for (int i = 0; i < 40; ++i) {
        const auto ra = ca.collectInterval();
        const auto rb = cb.collectInterval();
        // Counters are untouched by power drift.
        for (std::size_t c = 0; c < ra.pmc.size(); ++c)
            for (std::size_t e = 0; e < sim::kNumEvents; ++e)
                ASSERT_EQ(ra.pmc[c][e], rb.pmc[c][e]);
        ratio = rb.true_power_w / ra.true_power_w;
    }
    // 40 intervals of accumulating per-tick bias, clamped at e^0.4
    // (plus a little thermal-leakage feedback from the hotter chip).
    EXPECT_GT(ratio, 1.2);
    EXPECT_LT(ratio, std::exp(0.4) * 1.15);
    EXPECT_GT(drifted.faultInjector()->counters().drift_ticks, 0u);
}

TEST(FaultChip, SensorDriftLeavesGroundTruthIntact)
{
    auto plain = busyChip();
    auto drifted = busyChip();
    drifted.setFaultPlan(FaultPlan::parse("sensor_drift_bias=0.002"), 1);
    trace::Collector ca(plain), cb(drifted);
    double last_sensor_ratio = 1.0;
    for (int i = 0; i < 20; ++i) {
        const auto ra = ca.collectInterval();
        const auto rb = cb.collectInterval();
        EXPECT_EQ(ra.true_power_w, rb.true_power_w);
        EXPECT_EQ(ra.diode_temp_k, rb.diode_temp_k);
        last_sensor_ratio = rb.sensor_power_w / ra.sensor_power_w;
    }
    EXPECT_GT(last_sensor_ratio, 1.02); // decalibrating upward
}

TEST(FaultPlanDeath, NegativeDriftSpecIsFatal)
{
    EXPECT_DEATH(FaultPlan::parse("power_drift_bias=-0.1"),
                 "negative");
}

} // namespace
