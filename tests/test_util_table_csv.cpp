/**
 * @file
 * Unit tests for the table renderer and CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ppep/util/csv.hpp"
#include "ppep/util/table.hpp"

namespace {

using ppep::util::CsvWriter;
using ppep::util::Table;

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.14159, 0), "3");
    EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

TEST(Table, PctFormatting)
{
    EXPECT_EQ(Table::pct(0.046, 1), "4.6%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Table, ColumnsAligned)
{
    Table t;
    t.setHeader({"a", "bbbb"});
    t.addRow({"xxxxx", "y"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    // Every data line must have the same width.
    std::istringstream lines(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(lines, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << out;
    }
}

TEST(Table, CaptionPrinted)
{
    Table t("My caption");
    t.addRow({"x"});
    std::ostringstream oss;
    t.print(oss);
    EXPECT_NE(oss.str().find("My caption"), std::string::npos);
}

TEST(Table, RowCount)
{
    Table t;
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"a"});
    t.addRow({"b"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, CellContentsPreserved)
{
    Table t;
    t.setHeader({"col1", "col2"});
    t.addRow({"hello", "world"});
    std::ostringstream oss;
    t.print(oss);
    EXPECT_NE(oss.str().find("hello"), std::string::npos);
    EXPECT_NE(oss.str().find("world"), std::string::npos);
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path_ = ::testing::TempDir() + "ppep_csv_test.csv";

    std::string
    readBack()
    {
        std::ifstream in(path_);
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }
};

TEST_F(CsvTest, WritesStringRows)
{
    {
        CsvWriter w(path_);
        w.writeRow(std::vector<std::string>{"a", "b", "c"});
    }
    EXPECT_EQ(readBack(), "a,b,c\n");
}

TEST_F(CsvTest, QuotesSpecialCells)
{
    {
        CsvWriter w(path_);
        w.writeRow(std::vector<std::string>{"x,y", "he said \"hi\""});
    }
    EXPECT_EQ(readBack(), "\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, WritesNumericRows)
{
    {
        CsvWriter w(path_);
        w.writeRow(std::vector<double>{1.5, -2.0});
    }
    EXPECT_EQ(readBack(), "1.5,-2\n");
}

TEST_F(CsvTest, MultipleRows)
{
    {
        CsvWriter w(path_);
        w.writeRow(std::vector<std::string>{"h1", "h2"});
        w.writeRow(std::vector<double>{1.0, 2.0});
        w.writeRow(std::vector<double>{3.0, 4.0});
    }
    EXPECT_EQ(readBack(), "h1,h2\n1,2\n3,4\n");
}

} // namespace
