/**
 * @file
 * Randomised property tests: the full PPEP pipeline must hold for
 * workloads it has never seen — profiles drawn at random from the
 * ProfileBuilder's knob space, not from the training suite.
 */

#include <gtest/gtest.h>

#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/rng.hpp"
#include "ppep/workloads/builder.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;

const model::TrainedModels &
models()
{
    static const model::TrainedModels m = [] {
        model::Trainer trainer(sim::fx8320Config(), 404);
        std::vector<const workloads::Combination *> training;
        for (const auto &c : workloads::allCombinations())
            if (c.instances.size() == 1 && training.size() < 16)
                training.push_back(&c);
        return trainer.trainAll(training);
    }();
    return m;
}

/** A random but plausible profile drawn from seed @p seed. */
std::unique_ptr<sim::Job>
randomJob(std::uint64_t seed)
{
    util::Rng rng(seed);
    workloads::ProfileBuilder b("random-" + std::to_string(seed));
    const std::size_t phases = 1 + rng.uniformInt(4);
    for (std::size_t p = 0; p < phases; ++p) {
        b.memoryIntensity(rng.uniform(0.0, 1.0))
            .dramShare(rng.uniform(0.0, 1.0))
            .fpuPerInst(rng.uniform(0.0, 0.6))
            .branchRate(rng.uniform(0.02, 0.3))
            .mispredictRate(rng.uniform(0.0, 0.1))
            .resourceStallCpi(rng.uniform(0.1, 0.8))
            .addPhase(rng.uniform(5e8, 3e9));
    }
    return b.makeLoopingJob();
}

class RandomWorkloadSweep
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    trace::IntervalRecord
    measureAt(std::size_t vf)
    {
        sim::Chip chip(sim::fx8320Config(), GetParam());
        chip.setAllVf(vf);
        chip.setJob(0, randomJob(GetParam()));
        chip.setJob(5, randomJob(GetParam() + 1000));
        trace::Collector col(chip);
        col.collect(3);
        return col.collectInterval();
    }
};

TEST_P(RandomWorkloadSweep, SelfEstimateWithinBand)
{
    const auto rec = measureAt(4);
    const auto est = models().chip.estimate(rec);
    EXPECT_NEAR(est.total_w / rec.sensor_power_w, 1.0, 0.15);
}

TEST_P(RandomWorkloadSweep, CrossVfPredictionWithinBand)
{
    const auto at_top = measureAt(4);
    const auto at_low = measureAt(0);
    const auto pred = models().chip.predictAt(at_top, 0);
    EXPECT_NEAR(pred.total_w / at_low.sensor_power_w, 1.0, 0.2);
}

TEST_P(RandomWorkloadSweep, PredictedPowerMonotoneInVf)
{
    const auto rec = measureAt(4);
    double prev = 0.0;
    for (std::size_t vf = 0; vf < 5; ++vf) {
        const double p = models().chip.predictAt(rec, vf).total_w;
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST_P(RandomWorkloadSweep, PredictedIpsNeverExceedsClockScaling)
{
    // Speedup from VF1 to VF5 is bounded by the 2.5x clock ratio and
    // never below 1 (Eq. 1 is monotone in f).
    const auto rec = measureAt(4);
    const auto lo = models().chip.predictAt(rec, 0);
    (void)lo;
    const auto s = model::CpiModel::fromEvents(rec.pmc[0]);
    if (s.cpi <= 0.0)
        GTEST_SKIP() << "core idle in sampled interval";
    const double speedup = model::CpiModel::predictSpeedup(s, 1.4, 3.5);
    EXPECT_GE(speedup, 1.0);
    EXPECT_LE(speedup, 3.5 / 1.4 + 1e-9);
}

TEST_P(RandomWorkloadSweep, EventPredictionPreservesPerInstCounts)
{
    const auto rec = measureAt(4);
    const auto &ev = rec.pmc[0];
    const double inst =
        ev[sim::eventIndex(sim::Event::RetiredInst)];
    if (inst <= 0.0)
        GTEST_SKIP() << "core idle in sampled interval";
    const auto pred = model::EventPredictor::predict(
        ev, rec.duration_s, 3.5, 1.7);
    const double ips = pred.rates_per_s[sim::eventIndex(
        sim::Event::RetiredInst)];
    for (std::size_t i = 0; i < 8; ++i) {
        if (ev[i] <= 0.0)
            continue;
        EXPECT_NEAR(pred.rates_per_s[i] / ips, ev[i] / inst, 1e-9)
            << "event E" << i + 1;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadSweep,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));

} // namespace
