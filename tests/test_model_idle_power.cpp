/**
 * @file
 * Tests for the Eq. 2 idle power model, including the Fig. 1 protocol
 * run against the simulator (paper: per-VF AAE of 2-4%).
 */

#include <gtest/gtest.h>

#include "ppep/model/idle_power_model.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/util/stats.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;

/** Synthetic samples from an exactly-linear P(V, T) ground truth. */
std::vector<IdleSample>
linearSamples()
{
    std::vector<IdleSample> out;
    const std::vector<double> volts{0.9, 1.0, 1.1, 1.2, 1.3};
    for (double v : volts) {
        const double w1 = 0.1 + 0.2 * v;       // slope
        const double w0 = 5.0 * v * v - 2.0;   // intercept
        for (double t = 305.0; t <= 335.0; t += 2.0)
            out.push_back({v, t, w1 * t + w0});
    }
    return out;
}

TEST(IdleModel, UntrainedIsFlagged)
{
    IdlePowerModel m;
    EXPECT_FALSE(m.trained());
}

TEST(IdleModel, RecoversExactLinearTruth)
{
    const auto m = IdlePowerModel::train(linearSamples());
    ASSERT_TRUE(m.trained());
    for (double v : {0.9, 1.05, 1.3}) {
        const double w1 = 0.1 + 0.2 * v;
        const double w0 = 5.0 * v * v - 2.0;
        for (double t : {306.0, 320.0, 334.0})
            EXPECT_NEAR(m.predict(v, t), w1 * t + w0, 1e-6)
                << "V=" << v << " T=" << t;
    }
}

TEST(IdleModel, SlopeAndInterceptAccessors)
{
    const auto m = IdlePowerModel::train(linearSamples());
    EXPECT_NEAR(m.slope(1.0), 0.3, 1e-6);
    EXPECT_NEAR(m.intercept(1.0), 3.0, 1e-6);
}

TEST(IdleModel, PowerIncreasesWithTemperature)
{
    const auto m = IdlePowerModel::train(linearSamples());
    EXPECT_GT(m.predict(1.1, 330.0), m.predict(1.1, 310.0));
}

TEST(IdleModelDeath, NeedsTwoVoltages)
{
    std::vector<IdleSample> one_volt = {
        {1.0, 310.0, 20.0}, {1.0, 320.0, 21.0}, {1.0, 330.0, 22.0}};
    EXPECT_DEATH(IdlePowerModel::train(one_volt), "two voltages");
}

TEST(IdleModelDeath, PredictBeforeTrainPanics)
{
    IdlePowerModel m;
    EXPECT_DEATH(m.predict(1.0, 320.0), "not trained");
}

/** Full Fig. 1 protocol against the simulator. */
class IdleProtocol : public ::testing::Test
{
  protected:
    struct TrainedIdle
    {
        IdlePowerModel model;
    };

    static const TrainedIdle &
    shared()
    {
        static const TrainedIdle t = [] {
            TrainedIdle out;
            Trainer trainer(sim::fx8320Config(), 11);
            out.model = trainer.trainIdle();
            return out;
        }();
        return t;
    }
};

TEST_F(IdleProtocol, CoolingTraceDecays)
{
    Trainer trainer(sim::fx8320Config(), 11);
    const auto trace = trainer.collectCoolingTrace(4, 200, 300);
    ASSERT_GT(trace.power_curve_w.size(), trace.cool_start);
    // Heating raises temperature, cooling lowers it.
    EXPECT_GT(trace.temp_curve_k[trace.cool_start - 1],
              trace.temp_curve_k.front() + 3.0);
    EXPECT_LT(trace.temp_curve_k.back(),
              trace.temp_curve_k[trace.cool_start] - 2.0);
    // Idle power also decays with the temperature (leakage).
    EXPECT_LT(trace.power_curve_w.back(),
              trace.power_curve_w[trace.cool_start] + 1.0);
    // The samples carry the right voltage.
    for (const auto &s : trace.idle_samples)
        EXPECT_DOUBLE_EQ(s.voltage, 1.320);
}

TEST_F(IdleProtocol, TrainedModelAccurateAtEveryVf)
{
    // Paper Sec. IV-A: AAE of 2-4% per VF state on the FX-8320.
    const auto &m = shared().model;
    Trainer trainer(sim::fx8320Config(), 123); // fresh validation chips
    const auto cfg = sim::fx8320Config();
    for (std::size_t vf = 0; vf < cfg.vf_table.size(); ++vf) {
        const auto trace = trainer.collectCoolingTrace(vf, 150, 250);
        ppep::util::RunningStats err;
        for (const auto &s : trace.idle_samples)
            err.add(ppep::util::absRelErr(
                m.predict(s.voltage, s.temp_k), s.power_w));
        EXPECT_LT(err.mean(), 0.05) << "VF index " << vf;
    }
}

TEST_F(IdleProtocol, HigherVoltageMoreIdlePower)
{
    const auto &m = shared().model;
    const auto cfg = sim::fx8320Config();
    const double t = 320.0;
    double prev = 0.0;
    for (std::size_t vf = 0; vf < cfg.vf_table.size(); ++vf) {
        const double p =
            m.predict(cfg.vf_table.state(vf).voltage, t);
        EXPECT_GT(p, prev) << "VF index " << vf;
        prev = p;
    }
}

TEST_F(IdleProtocol, PhenomIdleModelAlsoAccurate)
{
    // Paper: AAE 2-3% on the Phenom II X6 1090T.
    Trainer trainer(sim::phenomIIConfig(), 17);
    const auto m = trainer.trainIdle();
    Trainer validate(sim::phenomIIConfig(), 177);
    const auto trace = validate.collectCoolingTrace(3, 150, 250);
    ppep::util::RunningStats err;
    for (const auto &s : trace.idle_samples)
        err.add(ppep::util::absRelErr(m.predict(s.voltage, s.temp_k),
                                      s.power_w));
    EXPECT_LT(err.mean(), 0.05);
}

} // namespace
