/**
 * @file
 * Steady-state allocation audit: once warm, a governed interval on the
 * GovernorLoop::drive() path must perform zero heap allocations — the
 * property that keeps fleet-scale governing free of allocator
 * contention and latency spikes.
 *
 * The audit replaces global operator new in this binary with a counting
 * wrapper; counting is switched on only around the intervals under
 * test.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include <ostream>
#include <streambuf>

#include "ppep/governor/energy_governor.hpp"
#include "ppep/governor/governor.hpp"
#include "ppep/governor/ppep_capping.hpp"
#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/runtime/arbiter.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/runtime/tenant.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {
std::atomic<std::size_t> g_news{0};
std::atomic<bool> g_counting{false};

void *
countedAlloc(std::size_t size)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace ppep;

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

struct Stack
{
    sim::ChipConfig cfg = sim::fx8320Config();
    model::TrainedModels models;
    model::Ppep ppep;

    Stack()
        : models([this] {
              model::Trainer trainer(cfg, 91);
              return trainer.trainAll(smallTrainingSet());
          }()),
          ppep(cfg, models.chip, models.pg)
    {
    }
};

/** Allocations observed during one drive() interval. */
std::size_t
allocationsPerInterval(governor::GovernorLoop &loop,
                       const governor::CapSchedule &schedule)
{
    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    loop.drive(1, schedule);
    g_counting.store(false, std::memory_order_relaxed);
    return g_news.load(std::memory_order_relaxed);
}

TEST(ZeroAlloc, EnergyGovernorSteadyStateIntervalIsAllocationFree)
{
    const Stack stack;
    sim::Chip chip(stack.cfg, 5);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    governor::EnergyOptimalGovernor gov(stack.cfg, stack.ppep,
                                        governor::EnergyObjective::Edp);
    governor::GovernorLoop loop(chip, gov);
    const auto schedule = governor::CapSchedule::unlimited();

    loop.drive(5, schedule); // warm every scratch buffer
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(allocationsPerInterval(loop, schedule), 0u)
            << "interval " << i;
}

TEST(ZeroAlloc, CappingGovernorSteadyStateIntervalIsAllocationFree)
{
    Stack stack;
    stack.cfg.per_cu_voltage = true;
    sim::Chip chip(stack.cfg, 5);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    governor::PpepCappingGovernor gov(stack.cfg, stack.ppep);
    governor::GovernorLoop loop(chip, gov);
    const governor::CapSchedule schedule(60.0);

    loop.drive(5, schedule);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(allocationsPerInterval(loop, schedule), 0u)
            << "interval " << i;
}

/** Discards everything without ever touching the heap. */
class NullStreambuf : public std::streambuf
{
  protected:
    int
    overflow(int c) override
    {
        return c == traits_type::eof() ? 0 : c;
    }

    std::streamsize
    xsputn(const char *, std::streamsize n) override
    {
        return n;
    }
};

/** A warmed telemetry sink must encode an interval allocation-free. */
template <typename Sink>
void
expectEncodeIsAllocationFree()
{
    const Stack stack;
    sim::Chip chip(stack.cfg, 5);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    trace::Collector col(chip);
    col.collect(2);
    const trace::IntervalRecord rec = col.collectInterval();
    const std::vector<std::size_t> cu_vf(stack.cfg.n_cus, 2);

    runtime::IntervalTelemetry t;
    t.index = 0;
    t.time_s = 0.2;
    t.rec = &rec;
    t.cu_vf = &cu_vf;
    t.cap_w = 80.0;
    t.predicted_power_w = 41.25;
    t.decision_latency_s = 3e-6;

    NullStreambuf null;
    std::ostream out(&null);
    Sink sink(out);
    for (int i = 0; i < 3; ++i) // warm the row buffer
        sink.onInterval(t);

    for (int i = 0; i < 10; ++i) {
        ++t.index;
        t.time_s += 0.2;
        g_news.store(0, std::memory_order_relaxed);
        g_counting.store(true, std::memory_order_relaxed);
        sink.onInterval(t);
        g_counting.store(false, std::memory_order_relaxed);
        EXPECT_EQ(g_news.load(std::memory_order_relaxed), 0u)
            << "interval " << i;
    }
}

TEST(ZeroAlloc, CsvSinkEncodeIsAllocationFreeOnceWarm)
{
    expectEncodeIsAllocationFree<runtime::CsvSink>();
}

TEST(ZeroAlloc, JsonlSinkEncodeIsAllocationFreeOnceWarm)
{
    expectEncodeIsAllocationFree<runtime::JsonlSink>();
}

TEST(ZeroAlloc, TenantAttributionIsAllocationFree)
{
    const Stack stack;
    sim::Chip chip(stack.cfg, 5);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    trace::Collector col(chip);
    col.collect(2);
    const trace::IntervalRecord rec = col.collectInterval();

    const runtime::TenantAttributor attr(
        stack.cfg, stack.models.dynamic, stack.models.pg,
        {{"alpha", {0, 1, 2, 3}, {}}, {"beta", {4, 5, 6, 7}, {}}});
    auto out = attr.makeAttribution();
    attr.attributeInto(rec, true, out); // warm (nothing to warm, but)

    for (int i = 0; i < 10; ++i) {
        g_news.store(0, std::memory_order_relaxed);
        g_counting.store(true, std::memory_order_relaxed);
        attr.attributeInto(rec, (i % 2) == 0, out);
        g_counting.store(false, std::memory_order_relaxed);
        EXPECT_EQ(g_news.load(std::memory_order_relaxed), 0u)
            << "interval " << i;
    }
}

TEST(ZeroAlloc, TenantSessionSteadyStateIntervalIsAllocationFree)
{
    // The full fleet path with tenants attached: drive() with per-
    // interval attribution and digest fan-out must stay allocation-free
    // once warm, or a mixed fleet would contend on the allocator.
    runtime::DigestSink digest;
    auto session =
        runtime::Session::builder(sim::fx8320Config())
            .seed(5)
            .pg(true)
            .trainingSeed(91)
            .trainingCombos(smallTrainingSet())
            .tenants({{"alpha", {0, 1, 2, 3}, {{0, "EP", true}}},
                      {"beta", {4, 5, 6, 7}, {{4, "CG", true}}}})
            .sink(digest)
            .build();

    session.drive(5); // warm every scratch buffer

    // Session::drive() pays a fixed setup cost per call (loop and
    // observer construction) that sits outside the warm path. The
    // contract under test is the per-interval work: attribution,
    // encoding, and digest fan-out. Driving 1 interval and then 21
    // must allocate identically — the 20 extra warm intervals touch
    // the heap zero times.
    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    session.drive(1);
    g_counting.store(false, std::memory_order_relaxed);
    const std::size_t setup = g_news.load(std::memory_order_relaxed);

    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    session.drive(21);
    g_counting.store(false, std::memory_order_relaxed);
    EXPECT_EQ(g_news.load(std::memory_order_relaxed), setup)
        << "a warm governed interval with tenant attribution "
           "allocated";
}

TEST(ZeroAlloc, RecalibratedSessionSteadyStateIntervalIsAllocationFree)
{
    // The reader side of the RCU swap: after a refit has been adopted,
    // the governed loop runs on the swapped-in generation — ring
    // snapshotting, the adoptIfDue fast path, and the rebuilt (worker-
    // pre-warmed) governor must all stay off the heap. max_generations=1
    // plus an effectively-infinite cooldown make the post-swap steady
    // state quiescent, so the background worker (whose allocations the
    // global counting hook would also see) is parked in its cv-wait for
    // the whole counted window.
    sim::FaultPlan plan;
    plan.power_drift_bias = 5e-4;
    plan.drift_clamp = 0.4;
    runtime::RecalibrationPolicy pol;
    pol.recal_divergence_w = 6.0;
    pol.ring_capacity = 64;
    pol.min_ring_fill = 32;
    pol.adopt_latency_intervals = 4;
    pol.max_generations = 1;
    pol.cooldown_intervals = 1000000;
    runtime::DigestSink digest;
    auto session = runtime::Session::builder(sim::fx8320Config())
                       .seed(5)
                       .trainingSeed(91)
                       .trainingCombos(smallTrainingSet())
                       .onePerCu({"EP", "CG", "458.sjeng", "EP"})
                       .faults(plan)
                       .recalibration(pol)
                       .sink(digest)
                       .build();

    session.drive(300); // drift, trigger, refit, adopt
    const runtime::Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    ASSERT_EQ(rc->generation(), 1u)
        << "the audit needs the swap to have happened";
    ASSERT_FALSE(rc->refitPending());

    session.drive(5); // warm the post-swap scratch

    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    session.drive(1);
    g_counting.store(false, std::memory_order_relaxed);
    const std::size_t setup = g_news.load(std::memory_order_relaxed);

    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    session.drive(21);
    g_counting.store(false, std::memory_order_relaxed);
    EXPECT_EQ(g_news.load(std::memory_order_relaxed), setup)
        << "a warm governed interval on a recalibrated session "
           "allocated";
}

TEST(ZeroAlloc, ArbiterGatherDecideIsAllocationFreeOnceConfigured)
{
    // The fleet arbiter's whole hot path — depositing every session's
    // per-VF exploration into the SoA lanes and solving the global
    // allocation (hull build, sort, sweep, leftover split, hysteresis)
    // — runs inside the fleet's barrier completion step every
    // interval. configure() is the only allocating phase by contract.
    runtime::ArbiterSpec spec;
    spec.budget =
        ppep::governor::CapSchedule({{0, 400.0}, {64, 280.0}});
    spec.tiers = {{"rack0", 250.0}, {"rack1", 250.0}};
    constexpr std::size_t kLanes = 16;
    constexpr std::size_t kVf = 8;
    std::vector<runtime::FleetArbiter::SessionSetup> setups(kLanes);
    for (std::size_t s = 0; s < kLanes; ++s) {
        setups[s].n_vf = kVf;
        setups[s].priority = 1.0 + static_cast<double>(s % 3) * 0.5;
        setups[s].slo_floor_w = 4.0;
    }
    const auto arb = runtime::makeArbiter(spec, setups);

    std::vector<model::VfPrediction> rows(kLanes * kVf);
    for (std::size_t s = 0; s < kLanes; ++s)
        for (std::size_t k = 0; k < kVf; ++k) {
            auto &r = rows[s * kVf + k];
            r.chip_power_w = 8.0 + 3.0 * static_cast<double>(k) +
                             0.1 * static_cast<double>(s);
            r.total_ips = 1e9 * static_cast<double>(k + 1) /
                          (1.0 + 0.1 * static_cast<double>(k));
        }
    const auto oneInterval = [&](std::size_t i) {
        for (std::size_t s = 0; s < kLanes; ++s)
            arb->gather(s, rows.data() + s * kVf,
                        s % 5 == 4 ? 0 : kVf, // a blind lane too
                        18.0 + static_cast<double>(s));
        arb->decide(i);
    };
    for (std::size_t i = 0; i < 8; ++i) // warm (nothing to warm, but)
        oneInterval(i);

    for (std::size_t i = 0; i < 80; ++i) {
        g_news.store(0, std::memory_order_relaxed);
        g_counting.store(true, std::memory_order_relaxed);
        oneInterval(8 + i); // crosses the budget drop at 64
        g_counting.store(false, std::memory_order_relaxed);
        EXPECT_EQ(g_news.load(std::memory_order_relaxed), 0u)
            << "interval " << i;
    }
}

TEST(ZeroAlloc, CountingHookIsLive)
{
    // Sanity: the audit must actually observe allocations, or the
    // zero-counts above would be vacuous.
    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    auto *p = new std::vector<double>(1024);
    g_counting.store(false, std::memory_order_relaxed);
    delete p;
    EXPECT_GE(g_news.load(std::memory_order_relaxed), 1u);
}

} // namespace
