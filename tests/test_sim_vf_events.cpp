/**
 * @file
 * Unit tests for VF tables and the Table-I event catalogue.
 */

#include <gtest/gtest.h>

#include "ppep/sim/events.hpp"
#include "ppep/sim/vf_state.hpp"

namespace {

using namespace ppep::sim;

TEST(VfTable, Fx8320MatchesPaper)
{
    const auto t = fx8320VfTable();
    ASSERT_EQ(t.size(), 5u);
    // Sec. II: VF5 (1.320V, 3.5GHz) ... VF1 (0.888V, 1.4GHz).
    EXPECT_DOUBLE_EQ(t.state(4).voltage, 1.320);
    EXPECT_DOUBLE_EQ(t.state(4).freq_ghz, 3.5);
    EXPECT_DOUBLE_EQ(t.state(0).voltage, 0.888);
    EXPECT_DOUBLE_EQ(t.state(0).freq_ghz, 1.4);
    EXPECT_DOUBLE_EQ(t.state(2).voltage, 1.128);
    EXPECT_DOUBLE_EQ(t.state(2).freq_ghz, 2.3);
}

TEST(VfTable, PhenomHasFourStates)
{
    const auto t = phenomIIVfTable();
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.top(), 3u);
}

TEST(VfTable, NamesAscend)
{
    const auto t = fx8320VfTable();
    EXPECT_EQ(t.name(0), "VF1");
    EXPECT_EQ(t.name(4), "VF5");
}

TEST(VfTable, MaxVoltageIsTop)
{
    const auto t = fx8320VfTable();
    EXPECT_DOUBLE_EQ(t.maxVoltage(), 1.320);
}

TEST(VfTable, FrequenciesStrictlyAscending)
{
    const auto t = fx8320VfTable();
    for (std::size_t i = 1; i < t.size(); ++i)
        EXPECT_GT(t.state(i).freq_ghz, t.state(i - 1).freq_ghz);
}

TEST(VfTable, NbStatesMatchPaper)
{
    // Sec. V-C2: VF_hi (1.175V, 2.2GHz), VF_lo (0.940V, 1.1GHz).
    EXPECT_DOUBLE_EQ(nbVfHi().voltage, 1.175);
    EXPECT_DOUBLE_EQ(nbVfHi().freq_ghz, 2.2);
    EXPECT_DOUBLE_EQ(nbVfLo().voltage, 0.940);
    EXPECT_DOUBLE_EQ(nbVfLo().freq_ghz, 1.1);
    // The what-if is a 20% voltage drop and a 50% frequency drop.
    EXPECT_NEAR(nbVfLo().voltage / nbVfHi().voltage, 0.8, 0.001);
    EXPECT_NEAR(nbVfLo().freq_ghz / nbVfHi().freq_ghz, 0.5, 1e-12);
}

TEST(Events, CatalogueMatchesTableI)
{
    EXPECT_EQ(eventCode(Event::RetiredUop), "PMCx0c1");
    EXPECT_EQ(eventCode(Event::FpuPipeAssignment), "PMCx000");
    EXPECT_EQ(eventCode(Event::InstCacheFetch), "PMCx080");
    EXPECT_EQ(eventCode(Event::DataCacheAccess), "PMCx040");
    EXPECT_EQ(eventCode(Event::RequestToL2), "PMCx07d");
    EXPECT_EQ(eventCode(Event::RetiredBranch), "PMCx0c2");
    EXPECT_EQ(eventCode(Event::RetiredMispBranch), "PMCx0c3");
    EXPECT_EQ(eventCode(Event::L2CacheMiss), "PMCx07e");
    EXPECT_EQ(eventCode(Event::DispatchStall), "PMCx0d1");
    EXPECT_EQ(eventCode(Event::ClocksNotHalted), "PMCx076");
    EXPECT_EQ(eventCode(Event::RetiredInst), "PMCx0c0");
    EXPECT_EQ(eventCode(Event::MabWaitCycles), "PMCx069");
}

TEST(Events, LabelsAreE1ToE12)
{
    EXPECT_EQ(eventLabel(Event::RetiredUop), "E1");
    EXPECT_EQ(eventLabel(Event::MabWaitCycles), "E12");
}

TEST(Events, CycleCountingEvents)
{
    EXPECT_TRUE(eventCountsCycles(Event::DispatchStall));
    EXPECT_TRUE(eventCountsCycles(Event::ClocksNotHalted));
    EXPECT_TRUE(eventCountsCycles(Event::MabWaitCycles));
    EXPECT_FALSE(eventCountsCycles(Event::RetiredUop));
    EXPECT_FALSE(eventCountsCycles(Event::RetiredInst));
}

TEST(Events, AllEventsCoverTableInOrder)
{
    const auto &all = allEvents();
    ASSERT_EQ(all.size(), kNumEvents);
    for (std::size_t i = 0; i < kNumEvents; ++i)
        EXPECT_EQ(eventIndex(all[i]), i);
}

TEST(Events, PowerEventSplit)
{
    // E1-E9 power (first seven core-private), E10-E12 performance.
    EXPECT_EQ(kNumPowerEvents, 9u);
    EXPECT_EQ(kNumCorePowerEvents, 7u);
    EXPECT_EQ(kNumEvents, 12u);
}

} // namespace
