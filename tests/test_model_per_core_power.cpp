/**
 * @file
 * Tests for per-core power attribution (Sec. IV-D's per-core total).
 */

#include <gtest/gtest.h>

#include "ppep/model/per_core_power.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;
namespace wl = ppep::workloads;

struct Shared
{
    sim::ChipConfig cfg = sim::fx8320Config();
    TrainedModels models;

    Shared()
    {
        Trainer trainer(cfg, 77);
        // Mix of single and multi-instance combos: the Eq. 3 weights
        // must see NB contention during training or the E9 (stall)
        // weight misprices heavily contended workloads.
        std::vector<const wl::Combination *> training;
        for (const auto &c : wl::allCombinations())
            if (c.instances.size() == 1 && training.size() < 10)
                training.push_back(&c);
        for (const auto &c : wl::allCombinations())
            if (c.instances.size() >= 3 && training.size() < 20)
                training.push_back(&c);
        models = trainer.trainAll(training);
    }

    static const Shared &
    get()
    {
        static const Shared s;
        return s;
    }
};

ppep::trace::IntervalRecord
measure(const std::string &program, std::size_t copies, bool pg)
{
    const auto &s = Shared::get();
    sim::Chip chip(s.cfg, 55);
    if (pg)
        chip.setPowerGatingEnabled(true);
    wl::launch(chip, wl::replicate(program, copies), true);
    ppep::trace::Collector col(chip);
    col.collect(3);
    return col.collectInterval();
}

TEST(PerCorePower, IdleCoresAttributedNothing)
{
    const auto &s = Shared::get();
    const PerCorePower attr(s.cfg, s.models.dynamic, s.models.pg);
    const auto shares =
        attr.attribute(measure("456.hmmer", 1, true), true);
    std::size_t busy = 0;
    for (const auto &share : shares) {
        if (share.busy) {
            ++busy;
            EXPECT_GT(share.total_w, 0.0);
        } else {
            EXPECT_DOUBLE_EQ(share.total_w, 0.0);
        }
    }
    EXPECT_EQ(busy, 1u);
}

TEST(PerCorePower, SharesSumNearSensorUnderPg)
{
    // Attributed power must track the measured chip power: the paper's
    // whole point is that per-core shares add up to reality.
    const auto &s = Shared::get();
    const PerCorePower attr(s.cfg, s.models.dynamic, s.models.pg);
    // Tolerance widens with contention: the E9 NB proxy overprices
    // heavily contended memory-bound runs (the same error class the
    // paper's Fig. 2a shows for multi-programmed combinations).
    for (std::size_t copies : {1u, 2u, 4u}) {
        const auto rec = measure("433.milc", copies, true);
        const auto shares = attr.attribute(rec, true);
        EXPECT_NEAR(PerCorePower::total(shares) / rec.sensor_power_w,
                    1.0, copies == 4 ? 0.20 : 0.15)
            << copies << " copies";
    }
}

TEST(PerCorePower, SharesSumNearSensorWithoutPg)
{
    const auto &s = Shared::get();
    const PerCorePower attr(s.cfg, s.models.dynamic, s.models.pg);
    const auto rec = measure("458.sjeng", 4, false);
    const auto shares = attr.attribute(rec, false);
    EXPECT_NEAR(PerCorePower::total(shares) / rec.sensor_power_w, 1.0,
                0.15);
}

TEST(PerCorePower, BusyCoreTotalsSplitDynamicAndIdle)
{
    const auto &s = Shared::get();
    const PerCorePower attr(s.cfg, s.models.dynamic, s.models.pg);
    const auto shares =
        attr.attribute(measure("470.lbm", 2, true), true);
    for (const auto &share : shares) {
        if (!share.busy)
            continue;
        EXPECT_GT(share.dynamic_w, 0.0);
        EXPECT_GT(share.idle_share_w, 0.0);
        EXPECT_NEAR(share.total_w,
                    share.dynamic_w + share.idle_share_w, 1e-12);
    }
}

TEST(PerCorePower, LoneThreadCarriesWholeUncore)
{
    // Eq. 7 with n = 1: one busy core carries Pidle(CU) + NB + base.
    const auto &s = Shared::get();
    const PerCorePower attr(s.cfg, s.models.dynamic, s.models.pg);
    const auto rec = measure("456.hmmer", 1, true);
    const auto shares = attr.attribute(rec, true);
    const auto &c = s.models.pg.components(rec.cu_vf.front());
    for (const auto &share : shares) {
        if (share.busy) {
            EXPECT_NEAR(share.idle_share_w,
                        c.p_cu + c.p_nb + c.p_base, 1e-9);
        }
    }
}

TEST(PerCorePower, SharedUncoreShrinksWithMoreThreads)
{
    const auto &s = Shared::get();
    const PerCorePower attr(s.cfg, s.models.dynamic, s.models.pg);
    const auto one = attr.attribute(measure("EP", 1, true), true);
    const auto four = attr.attribute(measure("EP", 4, true), true);
    double idle_one = 0.0, idle_four = 0.0;
    for (const auto &sh : one)
        if (sh.busy)
            idle_one = sh.idle_share_w;
    for (const auto &sh : four)
        if (sh.busy) {
            idle_four = sh.idle_share_w;
            break;
        }
    EXPECT_GT(idle_one, idle_four);
}

TEST(PerCorePowerDeath, UntrainedModelsRejected)
{
    const auto &s = Shared::get();
    DynamicPowerModel untrained;
    EXPECT_DEATH(PerCorePower(s.cfg, untrained, s.models.pg),
                 "not trained");
}

} // namespace
