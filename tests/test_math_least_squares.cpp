/**
 * @file
 * Unit tests for ordinary and non-negative least squares.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ppep/math/least_squares.hpp"
#include "ppep/util/rng.hpp"

namespace {

using ppep::math::fitLeastSquares;
using ppep::math::fitNonNegativeLeastSquares;
using ppep::math::Matrix;

Matrix
randomDesign(std::size_t n, std::size_t p, ppep::util::Rng &rng)
{
    Matrix x(n, p);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < p; ++c)
            x(r, c) = rng.uniform(0.0, 10.0);
    return x;
}

TEST(LeastSquares, RecoversExactCoefficients)
{
    ppep::util::Rng rng(1);
    const auto x = randomDesign(50, 3, rng);
    const std::vector<double> truth{2.0, -1.5, 0.25};
    const auto y = x.multiply(truth);
    const auto fit = fitLeastSquares(x, y);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(fit.coefficients[i], truth[i], 1e-9);
    EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, RecoversUnderNoise)
{
    ppep::util::Rng rng(2);
    const auto x = randomDesign(2000, 2, rng);
    const std::vector<double> truth{3.0, 7.0};
    auto y = x.multiply(truth);
    for (auto &v : y)
        v += rng.gaussian(0.0, 0.5);
    const auto fit = fitLeastSquares(x, y);
    EXPECT_NEAR(fit.coefficients[0], 3.0, 0.05);
    EXPECT_NEAR(fit.coefficients[1], 7.0, 0.05);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LeastSquares, RidgeShrinksCoefficients)
{
    ppep::util::Rng rng(3);
    const auto x = randomDesign(50, 2, rng);
    const std::vector<double> truth{5.0, -5.0};
    const auto y = x.multiply(truth);
    const auto plain = fitLeastSquares(x, y);
    const auto ridged = fitLeastSquares(x, y, 1000.0);
    EXPECT_LT(std::fabs(ridged.coefficients[0]),
              std::fabs(plain.coefficients[0]) + 1e-9);
    EXPECT_LT(std::fabs(ridged.coefficients[1]),
              std::fabs(plain.coefficients[1]));
}

TEST(LeastSquares, PredictMatchesManual)
{
    const auto x = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    const std::vector<double> coef{10.0, 1.0};
    const auto pred = ppep::math::predict(x, coef);
    EXPECT_DOUBLE_EQ(pred[0], 12.0);
    EXPECT_DOUBLE_EQ(pred[1], 34.0);
}

TEST(Nnls, MatchesOlsWhenTruthIsPositive)
{
    ppep::util::Rng rng(4);
    const auto x = randomDesign(200, 4, rng);
    const std::vector<double> truth{1.0, 0.5, 2.0, 0.1};
    const auto y = x.multiply(truth);
    const auto fit = fitNonNegativeLeastSquares(x, y);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(fit.coefficients[i], truth[i], 1e-6);
}

TEST(Nnls, ClampsNegativeTruthToZero)
{
    ppep::util::Rng rng(5);
    const auto x = randomDesign(300, 3, rng);
    const std::vector<double> truth{2.0, -1.0, 1.0};
    const auto y = x.multiply(truth);
    const auto fit = fitNonNegativeLeastSquares(x, y);
    for (double c : fit.coefficients)
        EXPECT_GE(c, 0.0);
    EXPECT_DOUBLE_EQ(fit.coefficients[1], 0.0);
}

TEST(Nnls, AllZeroTargetGivesZeroCoefficients)
{
    ppep::util::Rng rng(6);
    const auto x = randomDesign(30, 3, rng);
    const std::vector<double> y(30, 0.0);
    const auto fit = fitNonNegativeLeastSquares(x, y);
    for (double c : fit.coefficients)
        EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(Nnls, ResidualNeverWorseThanZeroVector)
{
    ppep::util::Rng rng(7);
    const auto x = randomDesign(100, 5, rng);
    std::vector<double> y(100);
    for (auto &v : y)
        v = rng.uniform(-5.0, 5.0);
    const auto fit = fitNonNegativeLeastSquares(x, y);
    double norm_y = 0.0;
    for (double v : y)
        norm_y += v * v;
    EXPECT_LE(fit.rmse * fit.rmse * 100.0, norm_y + 1e-9);
}

// Property sweep over problem sizes: NNLS on noisy positive-truth data
// must stay close to the truth.
class NnlsSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(NnlsSweep, RecoversPositiveTruthUnderNoise)
{
    const std::size_t p = GetParam();
    ppep::util::Rng rng(100 + p);
    const auto x = randomDesign(400 * p, p, rng);
    std::vector<double> truth(p);
    for (std::size_t i = 0; i < p; ++i)
        truth[i] = 0.5 + static_cast<double>(i);
    auto y = x.multiply(truth);
    for (auto &v : y)
        v += rng.gaussian(0.0, 0.1);
    const auto fit = fitNonNegativeLeastSquares(x, y);
    for (std::size_t i = 0; i < p; ++i)
        EXPECT_NEAR(fit.coefficients[i], truth[i], 0.1) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Dims, NnlsSweep,
                         ::testing::Values(1u, 2u, 3u, 6u, 9u));

} // namespace
