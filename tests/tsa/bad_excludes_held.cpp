/**
 * @file
 * Thread-safety negative fixture: calling a PPEP_EXCLUDES(mu) function
 * while holding mu MUST fail to compile under PPEP_THREAD_SAFETY —
 * the callee takes the lock itself, so the call would self-deadlock.
 * This is how the ModelStore registry -> path lock order is encoded.
 */

#include "ppep/util/sync.hpp"

namespace {

class Registry
{
  public:
    void reenter() PPEP_EXCLUDES(mu_)
    {
        ppep::util::MutexLock g(mu_);
        locked(); // BAD: locked() excludes mu_, which is held here.
    }

    void locked() PPEP_EXCLUDES(mu_)
    {
        ppep::util::MutexLock g(mu_);
    }

  private:
    ppep::util::Mutex mu_;
};

} // namespace

int
main()
{
    Registry r;
    r.reenter();
    return 0;
}
