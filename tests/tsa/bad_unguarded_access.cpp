/**
 * @file
 * Thread-safety negative fixture: writing a PPEP_GUARDED_BY member
 * without holding its mutex MUST fail to compile under
 * PPEP_THREAD_SAFETY (-Werror=thread-safety). This is the canonical
 * data race the analysis exists to reject.
 */

#include "ppep/util/sync.hpp"

namespace {

class Counter
{
  public:
    void bump()
    {
        ++n_; // BAD: n_ is guarded by mu_, which is not held here.
    }

  private:
    ppep::util::Mutex mu_;
    long n_ PPEP_GUARDED_BY(mu_) = 0;
};

} // namespace

int
main()
{
    Counter c;
    c.bump();
    return 0;
}
