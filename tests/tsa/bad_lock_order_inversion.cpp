/**
 * @file
 * Thread-safety negative fixture: acquiring two mutexes against their
 * declared PPEP_ACQUIRED_AFTER order MUST fail to compile under
 * PPEP_THREAD_SAFETY (the ordering checks live behind
 * -Wthread-safety-beta, which the option promotes to an error too).
 */

#include "ppep/util/sync.hpp"

namespace {

class TwoLocks
{
  public:
    void wrongOrder() PPEP_EXCLUDES(first_, second_)
    {
        // BAD: second_ is declared acquired-after first_, so taking it
        // first inverts the declared order.
        ppep::util::MutexLock b(second_);
        ppep::util::MutexLock a(first_);
    }

  private:
    ppep::util::Mutex first_;
    ppep::util::Mutex second_ PPEP_ACQUIRED_AFTER(first_);
};

} // namespace

int
main()
{
    TwoLocks t;
    t.wrongOrder();
    return 0;
}
