/**
 * @file
 * Thread-safety positive fixture: every locking idiom the runtime uses,
 * written correctly — MUST compile cleanly with the PPEP_THREAD_SAFETY
 * flags (-Werror=thread-safety -Werror=thread-safety-beta). If this
 * fixture fails, the wrappers themselves (util/sync.hpp) regressed, not
 * a caller.
 */

#include "ppep/util/sync.hpp"

namespace {

ppep::util::Role serial_role;

/** The arbiter idiom: callable only from the barrier-serial section. */
void
serialOnly() PPEP_REQUIRES(serial_role)
{
}

/** The mailbox idiom: guarded state, scoped locks, explicit CV wait
 *  loops, an EXCLUDES public surface, and a REQUIRES helper. */
class Mailbox
{
  public:
    void post() PPEP_EXCLUDES(mu_)
    {
        {
            ppep::util::MutexLock g(mu_);
            bumpLocked();
            ready_ = true;
        }
        cv_.notify_all();
    }

    /** Explicit wait loop — the only CV shape TSA can verify. */
    int take() PPEP_EXCLUDES(mu_)
    {
        ppep::util::UniqueLock lk(mu_);
        while (!ready_)
            cv_.wait(lk);
        ready_ = false;
        return n_;
    }

    /** The unlock-work-relock shape of the telemetry writer. */
    void dropAndRetake() PPEP_EXCLUDES(mu_)
    {
        ppep::util::UniqueLock lk(mu_);
        ++n_;
        lk.unlock();
        serialish(); // unguarded work while the lock is dropped
        lk.lock();
        ++n_;
    }

    /** try_lock in an if-condition acquires only on the true branch. */
    bool tryBump() PPEP_EXCLUDES(mu_)
    {
        if (mu_.try_lock()) {
            ++n_;
            mu_.unlock();
            return true;
        }
        return false;
    }

  private:
    void bumpLocked() PPEP_REQUIRES(mu_) { ++n_; }

    static void serialish()
    {
        ppep::util::RoleGuard serial(serial_role);
        serialOnly();
    }

    ppep::util::Mutex mu_;
    ppep::util::CondVar cv_;
    int n_ PPEP_GUARDED_BY(mu_) = 0;
    bool ready_ PPEP_GUARDED_BY(mu_) = false;
};

} // namespace

int
main()
{
    Mailbox m;
    m.post();
    const int n = m.take();
    m.dropAndRetake();
    (void)m.tryBump();
    return n == 0 ? 1 : 0;
}
