/**
 * @file
 * Thread-safety negative fixture: calling a PPEP_REQUIRES function
 * without holding the capability MUST fail to compile under
 * PPEP_THREAD_SAFETY. This is the arbiter pattern — decide() requires
 * the barrier-serial role, and a call site outside a RoleGuard scope
 * is exactly the mistake being rejected here.
 */

#include "ppep/util/thread_annotations.hpp"

namespace {

ppep::util::Role serial_role;

void
serialOnly() PPEP_REQUIRES(serial_role)
{
}

} // namespace

int
main()
{
    serialOnly(); // BAD: no RoleGuard on serial_role at this call site.
    return 0;
}
