/**
 * @file
 * Unit tests for the deterministic xoshiro256** RNG.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

#include "ppep/util/rng.hpp"

namespace {

using ppep::util::Rng;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    std::size_t same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5u);
}

TEST(Rng, CopyIsIndependentSnapshot)
{
    Rng a(99);
    a.next();
    Rng b = a; // snapshot
    EXPECT_EQ(a.next(), b.next());
    a.next();
    // b is one draw behind a now; sequences must still match pairwise.
    EXPECT_EQ(a.next(), (b.next(), b.next()));
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double s = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        s += r.uniform();
    EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(13);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng r(17);
    std::array<int, 7> counts{};
    for (int i = 0; i < 7000; ++i)
        ++counts[r.uniformInt(7)];
    for (int c : counts)
        EXPECT_GT(c, 700); // each residue ~1000 expected
}

TEST(Rng, UniformIntOneAlwaysZero)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.uniformInt(1), 0u);
}

TEST(Rng, GaussianMoments)
{
    Rng r(23);
    const int n = 200000;
    double s = 0.0, s2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian();
        s += g;
        s2 += g * g;
    }
    EXPECT_NEAR(s / n, 0.0, 0.01);
    EXPECT_NEAR(s2 / n, 1.0, 0.02);
}

TEST(Rng, GaussianScaled)
{
    Rng r(29);
    const int n = 100000;
    double s = 0.0, s2 = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = r.gaussian(10.0, 2.0);
        s += g;
        s2 += (g - 10.0) * (g - 10.0);
    }
    EXPECT_NEAR(s / n, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(s2 / n), 2.0, 0.05);
}

TEST(Rng, BernoulliRate)
{
    Rng r(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(37);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, ForkIsDeterministic)
{
    Rng parent(41);
    Rng a = parent.fork(5);
    Rng b = parent.fork(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkedStreamsDecorrelated)
{
    Rng parent(43);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    std::size_t same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5u);
}

TEST(Rng, NoShortCycle)
{
    Rng r(47);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(r.next());
    EXPECT_EQ(seen.size(), 10000u);
}

} // namespace
