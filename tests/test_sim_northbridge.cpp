/**
 * @file
 * Unit tests for the shared NB latency/contention model.
 */

#include <gtest/gtest.h>

#include "ppep/sim/northbridge.hpp"

namespace {

using namespace ppep::sim;

ChipConfig
cfg()
{
    auto c = fx8320Config();
    c.rate_jitter_sd = 0.0;
    return c;
}

CoreDemand
memDemand(const ChipConfig &c, double f_ghz, double intensity = 1.0)
{
    Phase p;
    p.l2req_per_inst = 0.05 * intensity;
    p.l2miss_per_inst = 0.025 * intensity;
    p.leading_per_inst = 0.007 * intensity;
    p.l3_miss_rate = 0.8;
    ppep::util::Rng rng(1);
    return {CoreModel::effectiveRates(c, p, f_ghz, rng), f_ghz};
}

TEST(NorthBridge, L3LatencyScalesWithNbFrequency)
{
    const auto c = cfg();
    NorthBridge nb(c);
    const double hi = nb.l3LatencyNs();
    nb.setVf(c.nb.vf_lo);
    const double lo = nb.l3LatencyNs();
    EXPECT_NEAR(lo / hi, 2.0, 1e-9); // half frequency, double latency
}

TEST(NorthBridge, DramLatencyHasFixedComponent)
{
    const auto c = cfg();
    NorthBridge nb(c);
    const double hi = nb.dramLatencyNs();
    nb.setVf(c.nb.vf_lo);
    const double lo = nb.dramLatencyNs();
    // Only the MC part scales, so lo < 2 * hi.
    EXPECT_GT(lo, hi);
    EXPECT_LT(lo, 2.0 * hi);
    EXPECT_NEAR(lo - hi, c.nb.mc_latency_cycles / c.nb.vf_lo.freq_ghz -
                             c.nb.mc_latency_cycles / c.nb.vf_hi.freq_ghz,
                1e-9);
}

TEST(NorthBridge, CoreLatencyBlendsL3AndDram)
{
    const auto c = cfg();
    NorthBridge nb(c);
    const double pure_l3 = nb.coreLatencyNs(0.0, 1.0);
    const double pure_dram = nb.coreLatencyNs(1.0, 1.0);
    const double half = nb.coreLatencyNs(0.5, 1.0);
    EXPECT_DOUBLE_EQ(pure_l3, nb.l3LatencyNs());
    EXPECT_DOUBLE_EQ(pure_dram, nb.dramLatencyNs());
    EXPECT_NEAR(half, 0.5 * (pure_l3 + pure_dram), 1e-12);
}

TEST(NorthBridge, EmptyResolutionIsIdle)
{
    const auto c = cfg();
    NorthBridge nb(c);
    const auto res = nb.resolve({});
    EXPECT_TRUE(res.mem_lat_ns.empty());
    EXPECT_DOUBLE_EQ(res.utilization, 0.0);
    EXPECT_DOUBLE_EQ(res.queue_factor, 1.0);
}

TEST(NorthBridge, SingleCoreLowUtilization)
{
    const auto c = cfg();
    NorthBridge nb(c);
    const auto res = nb.resolve({memDemand(c, 3.5)});
    ASSERT_EQ(res.mem_lat_ns.size(), 1u);
    EXPECT_LT(res.utilization, 0.35);
    EXPECT_GT(res.queue_factor, 1.0);
    EXPECT_LT(res.queue_factor, 1.6);
}

TEST(NorthBridge, ContentionRaisesLatency)
{
    const auto c = cfg();
    NorthBridge nb(c);
    const auto solo = nb.resolve({memDemand(c, 3.5)});
    std::vector<CoreDemand> eight(8, memDemand(c, 3.5));
    const auto crowd = nb.resolve(eight);
    EXPECT_GT(crowd.mem_lat_ns[0], solo.mem_lat_ns[0]);
    EXPECT_GT(crowd.utilization, solo.utilization);
}

TEST(NorthBridge, UtilizationCapped)
{
    const auto c = cfg();
    NorthBridge nb(c);
    // Absurd demand cannot exceed the configured cap.
    std::vector<CoreDemand> storm(8, memDemand(c, 3.5, 8.0));
    const auto res = nb.resolve(storm);
    EXPECT_LE(res.utilization, c.nb.max_utilization + 1e-9);
    EXPECT_GE(res.queue_factor, 1.0);
}

TEST(NorthBridge, LowerCoreFrequencyLowersPressure)
{
    const auto c = cfg();
    NorthBridge nb(c);
    std::vector<CoreDemand> fast(4, memDemand(c, 3.5));
    std::vector<CoreDemand> slow(4, memDemand(c, 1.4));
    EXPECT_GT(nb.resolve(fast).utilization,
              nb.resolve(slow).utilization);
}

TEST(NorthBridge, FixedPointSelfConsistent)
{
    // Re-evaluating the demand at the resolved latency must reproduce
    // the resolved utilisation (the definition of a fixed point).
    const auto c = cfg();
    NorthBridge nb(c);
    std::vector<CoreDemand> demands(6, memDemand(c, 2.9));
    const auto res = nb.resolve(demands);
    double bytes = 0.0;
    for (std::size_t i = 0; i < demands.size(); ++i) {
        const double ips = CoreModel::instRate(
            demands[i].rates, demands[i].f_ghz, res.mem_lat_ns[i]);
        bytes += ips * demands[i].rates.dram_per_inst * c.nb.line_bytes;
    }
    const double rho = std::min(bytes / (c.nb.dram_bw_gbs * 1e9),
                                c.nb.max_utilization);
    EXPECT_NEAR(rho, res.utilization, 1e-6);
    EXPECT_NEAR(res.queue_factor, 1.0 / (1.0 - rho), 1e-6);
}

TEST(NorthBridge, NbLowFrequencyRaisesLatencyUnderLoad)
{
    const auto c = cfg();
    NorthBridge nb(c);
    std::vector<CoreDemand> demands(4, memDemand(c, 3.5));
    const auto hi = nb.resolve(demands);
    nb.setVf(c.nb.vf_lo);
    const auto lo = nb.resolve(demands);
    EXPECT_GT(lo.mem_lat_ns[0], hi.mem_lat_ns[0]);
}

TEST(NorthBridgeDeath, RejectsBadVf)
{
    const auto c = cfg();
    NorthBridge nb(c);
    EXPECT_DEATH(nb.setVf({0.0, 2.2}), "bad NB VF");
}

// Property sweep: latency is monotone non-decreasing in the number of
// identical memory-bound co-runners.
class CrowdSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(CrowdSweep, MonotoneLatency)
{
    const auto c = cfg();
    NorthBridge nb(c);
    const std::size_t n = GetParam();
    std::vector<CoreDemand> fewer(n, memDemand(c, 3.5));
    std::vector<CoreDemand> more(n + 1, memDemand(c, 3.5));
    EXPECT_LE(nb.resolve(fewer).mem_lat_ns[0],
              nb.resolve(more).mem_lat_ns[0] + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Counts, CrowdSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 7u));

} // namespace
