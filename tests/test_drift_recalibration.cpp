/**
 * @file
 * Drift soak: long governed runs on slowly decaying hardware, proving
 * the full self-healing loop — divergence climbs, a refit triggers, the
 * hot swap lands at its deterministic deadline, the EWMA re-converges
 * under the clean threshold, and (when the drift outran recalibration)
 * the session re-promotes out of degraded mode. Also pins the fleet
 * determinism contract at soak length: refits in flight must not make
 * results depend on the thread count.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "ppep/runtime/fleet.hpp"
#include "ppep/runtime/recalibrate.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::RecalibrationPolicy;
using runtime::Recalibrator;
using runtime::Session;

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

const std::string &
cacheDir()
{
    static const std::string dir = [] {
        const std::string d = ::testing::TempDir() +
                              "ppep_drift_cache_" +
                              std::to_string(::getpid());
        std::filesystem::remove_all(d);
        return d;
    }();
    return dir;
}

/** Per-interval health trace for post-hoc soak assertions. */
class ProbeSink : public runtime::TelemetrySink
{
  public:
    void onInterval(const runtime::IntervalTelemetry &t) override
    {
        degraded.push_back(t.degraded);
        generation.push_back(t.model_generation);
        divergence.push_back(t.divergence_ewma_w);
    }

    std::vector<bool> degraded;
    std::vector<std::uint64_t> generation;
    std::vector<double> divergence;
};

RecalibrationPolicy
soakPolicy()
{
    RecalibrationPolicy p;
    // Heal before the demote line (15 W) and below the clean line
    // (8 W), so a freshly-triggered refit still lands the final EWMA
    // under clean even if the run ends mid-adoption-latency. Both
    // window and cadence must match the drift timescale: a refit fits
    // the *average* of its ring, so a window much longer than the ramp
    // leaves ~half a window of staleness behind after every swap, and
    // a long cooldown lets ~0.1 W of fresh divergence per interval
    // pile up between heals.
    p.recal_divergence_w = 6.0;
    p.ring_capacity = 96;
    p.cooldown_intervals = 64;
    return p;
}

Session
soakSession(double bias, double clamp, runtime::TelemetrySink &probe)
{
    sim::FaultPlan plan;
    plan.power_drift_bias = bias;
    plan.drift_clamp = clamp;
    return Session::builder(sim::fx8320Config())
        .seed(5)
        .trainingSeed(91)
        .trainingCombos(smallTrainingSet())
        .store(runtime::ModelStore(cacheDir()))
        .onePerCu({"EP", "CG", "458.sjeng", "EP"})
        .faults(plan)
        .recalibration(soakPolicy())
        .sink(probe)
        .build();
}

TEST(DriftSoak, TenThousandIntervalsHealAndReconverge)
{
    // Slow decay: the power model loses ~0.1% of accuracy per interval
    // until the drift clamps ~35% above nominal around interval 300.
    ProbeSink probe;
    auto session = soakSession(5e-5, 0.3, probe);
    ASSERT_EQ(session.drive(10000), 10000u);

    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    EXPECT_GE(rc->triggers(), 1u);
    EXPECT_GE(rc->accepted(), 1u);
    EXPECT_GE(rc->generation(), 1u);

    // Re-convergence: the refit models fit the decayed chip, so the
    // divergence EWMA ends under the clean threshold and the session
    // never had to degrade at all — healing beat demotion.
    const auto *mon = session.healthMonitor();
    ASSERT_NE(mon, nullptr);
    EXPECT_FALSE(mon->degraded());
    EXPECT_LT(mon->divergenceEwma(), mon->policy().clean_divergence_w);
    EXPECT_EQ(mon->demotions(), 0u);
    EXPECT_GE(mon->modelSwaps(), 1u);

    // The final window runs entirely on a refit generation, clean.
    ASSERT_EQ(probe.degraded.size(), 10000u);
    for (std::size_t i = 9000; i < 10000; ++i) {
        EXPECT_FALSE(probe.degraded[i]) << "interval " << i;
        EXPECT_GE(probe.generation[i], 1u) << "interval " << i;
    }
    EXPECT_LT(probe.divergence.back(),
              mon->policy().clean_divergence_w);
}

TEST(DriftSoak, FastDriftDemotesThenHealsAndRepromotes)
{
    // Decay faster than the ring can fill: the EWMA blows through the
    // demote line before the first refit is even eligible, the session
    // parks on the safe policy, and recovery must come from the swap —
    // trigger on the held EWMA, adopt, reset, earn a clean streak under
    // the new generation, re-promote.
    ProbeSink probe;
    auto session = soakSession(2e-3, 0.5, probe);
    ASSERT_EQ(session.drive(2000), 2000u);

    const Recalibrator *rc = session.recalibrator();
    ASSERT_NE(rc, nullptr);
    EXPECT_GE(rc->accepted(), 1u);

    const auto *mon = session.healthMonitor();
    ASSERT_NE(mon, nullptr);
    EXPECT_GE(mon->demotions(), 1u);
    EXPECT_GE(mon->repromotions(), 1u);
    EXPECT_GE(mon->modelSwaps(), 1u);
    EXPECT_FALSE(mon->degraded());
    EXPECT_LT(mon->divergenceEwma(), mon->policy().clean_divergence_w);

    // Once healed on the clamped (stationary) chip, it stays healed.
    ASSERT_EQ(probe.degraded.size(), 2000u);
    for (std::size_t i = 1500; i < 2000; ++i)
        EXPECT_FALSE(probe.degraded[i]) << "interval " << i;
}

TEST(DriftSoak, FleetSoakBitIdenticalAcrossThreadCounts)
{
    auto spec = [] {
        runtime::FleetSpec s;
        s.cfg = sim::fx8320Config();
        s.training_seed = 91;
        s.training_combos = smallTrainingSet();
        s.store.emplace(cacheDir());
        s.warmup = 1;
        s.intervals = 10000;
        s.default_recalibration = soakPolicy();
        sim::FaultPlan plan;
        plan.power_drift_bias = 5e-5;
        plan.drift_clamp = 0.3;
        static const std::vector<std::string> programs = {"EP", "CG"};
        for (std::size_t i = 0; i < 2; ++i) {
            runtime::FleetSessionSpec ss;
            ss.seed = 7 + i;
            ss.one_per_cu = {programs[i], "EP", "CG", "EP"};
            ss.faults = plan;
            s.sessions.push_back(std::move(ss));
        }
        return s;
    };

    runtime::Fleet serial(spec());
    const auto r1 = serial.run(1);
    runtime::Fleet threaded(spec());
    const auto r2 = threaded.run(2);
    ASSERT_EQ(r1.completed, 2u);
    ASSERT_EQ(r2.completed, 2u);
    bool any_refit = false;
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(r1.sessions[i].telemetry_digest,
                  r2.sessions[i].telemetry_digest)
            << "session " << i;
        EXPECT_EQ(r1.sessions[i].summary.model_generation,
                  r2.sessions[i].summary.model_generation);
        any_refit |= r1.sessions[i].summary.recal_accepted > 0;
    }
    EXPECT_TRUE(any_refit);
    // A soak session that healed ends under the clean threshold.
    for (const auto &s : r1.sessions) {
        if (s.summary.recal_accepted > 0) {
            EXPECT_LT(s.summary.final_divergence_ewma_w, 8.0);
        }
    }
}

} // namespace
