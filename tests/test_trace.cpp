/**
 * @file
 * Unit tests for interval collection and instruction-aligned
 * segmentation.
 */

#include <gtest/gtest.h>

#include "ppep/trace/collector.hpp"
#include "ppep/trace/segmenter.hpp"
#include "ppep/workloads/microbench.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::trace;
namespace sim = ppep::sim;

TEST(Collector, IntervalDurationMatchesConfig)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    Collector col(chip);
    const auto rec = col.collectInterval();
    EXPECT_DOUBLE_EQ(rec.duration_s, 0.2);
    EXPECT_NEAR(chip.timeS(), 0.2, 1e-12);
}

TEST(Collector, IdleChipHasNoBusyCores)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    Collector col(chip);
    const auto rec = col.collectInterval();
    EXPECT_EQ(rec.busy_cores, 0u);
    EXPECT_DOUBLE_EQ(rec.oracleTotal(sim::Event::RetiredInst), 0.0);
}

TEST(Collector, BusyCoresCounted)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    chip.setJob(5, ppep::workloads::makeBenchA());
    Collector col(chip);
    EXPECT_EQ(col.collectInterval().busy_cores, 2u);
}

TEST(Collector, SensorAverageNearTruthAverage)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeHeater());
    Collector col(chip);
    const auto rec = col.collectInterval();
    EXPECT_NEAR(rec.sensor_power_w / rec.true_power_w, 1.0, 0.03);
}

TEST(Collector, TruthDecompositionConsistent)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeHeater());
    Collector col(chip);
    const auto rec = col.collectInterval();
    EXPECT_NEAR(rec.true_power_w, rec.true_idle_w + rec.true_dynamic_w,
                1e-9);
}

TEST(Collector, VfContextRecorded)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setAllVf(2);
    Collector col(chip);
    const auto rec = col.collectInterval();
    ASSERT_EQ(rec.cu_vf.size(), 4u);
    for (std::size_t vf : rec.cu_vf)
        EXPECT_EQ(vf, 2u);
    EXPECT_DOUBLE_EQ(rec.nb_vf.freq_ghz, 2.2);
}

TEST(Collector, PmcTotalsApproximateOracleForSteadyLoad)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    for (std::size_t c = 0; c < 8; ++c)
        chip.setJob(c, ppep::workloads::makeBenchA());
    Collector col(chip);
    const auto rec = col.collectInterval();
    const double pmc = rec.pmcTotal(sim::Event::RetiredInst);
    const double oracle = rec.oracleTotal(sim::Event::RetiredInst);
    EXPECT_NEAR(pmc / oracle, 1.0, 0.03);
}

TEST(Collector, CollectUntilFinishedStops)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    sim::Phase p;
    p.inst_count = 3e8; // finishes within a handful of intervals
    chip.setJob(0, std::make_unique<sim::Job>(
                       "short", std::vector<sim::Phase>{p}));
    Collector col(chip);
    const auto recs = col.collectUntilFinished(100);
    EXPECT_LT(recs.size(), 100u);
    EXPECT_TRUE(col.allJobsFinished());
    double total = 0.0;
    for (const auto &r : recs)
        total += r.oracle[0][sim::eventIndex(sim::Event::RetiredInst)];
    EXPECT_NEAR(total, 3e8, 3e8 * 1e-6);
}

TEST(Collector, CollectUntilFinishedHonoursCap)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA()); // loops forever
    Collector col(chip);
    EXPECT_EQ(col.collectUntilFinished(7).size(), 7u);
}

TEST(Segmenter, TimelineAccumulates)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    Collector col(chip);
    const auto recs = col.collect(5);
    InstructionTimeline tl(recs, 0, /*use_pmc=*/false);
    double inst = 0.0;
    for (const auto &r : recs)
        inst += r.oracle[0][sim::eventIndex(sim::Event::RetiredInst)];
    EXPECT_NEAR(tl.totalInstructions(), inst, 1.0);
    EXPECT_DOUBLE_EQ(tl.cyclesAt(0.0), 0.0);
}

TEST(Segmenter, InterpolationIsMonotone)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeHeater());
    Collector col(chip);
    const auto recs = col.collect(5);
    InstructionTimeline tl(recs, 0, false);
    double prev = 0.0;
    const double total = tl.totalInstructions();
    for (int i = 1; i <= 20; ++i) {
        const double cyc = tl.cyclesAt(total * i / 20.0);
        EXPECT_GE(cyc, prev);
        prev = cyc;
    }
}

TEST(Segmenter, SegmentsCoverEqualInstructions)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    Collector col(chip);
    const auto recs = col.collect(6);
    InstructionTimeline tl(recs, 0, false);
    // Shave an ulp-scale margin so total/10 yields exactly ten segments
    // despite floating-point rounding in the cumulative sums.
    const double width = tl.totalInstructions() / 10.0 * (1.0 - 1e-12);
    const auto segs = segmentTimeline(tl, width);
    EXPECT_EQ(segs.size(), 10u);
    double cyc = 0.0;
    for (const auto &s : segs) {
        EXPECT_DOUBLE_EQ(s.instructions, width);
        cyc += s.cycles;
    }
    EXPECT_NEAR(cyc, tl.cyclesAt(tl.totalInstructions()),
                tl.cyclesAt(tl.totalInstructions()) * 1e-6);
}

TEST(Segmenter, SteadyWorkloadHasUniformSegments)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    Collector col(chip);
    const auto recs = col.collect(10);
    InstructionTimeline tl(recs, 0, false);
    const auto segs = segmentTimeline(tl, tl.totalInstructions() / 8.0);
    for (std::size_t i = 1; i < segs.size(); ++i)
        EXPECT_NEAR(segs[i].cycles / segs[0].cycles, 1.0, 0.05);
}

TEST(Segmenter, PartialTailDropped)
{
    sim::Chip chip(sim::fx8320Config(), 1);
    chip.setJob(0, ppep::workloads::makeBenchA());
    Collector col(chip);
    const auto recs = col.collect(3);
    InstructionTimeline tl(recs, 0, false);
    // Width that doesn't divide evenly: floor(total/width) segments.
    const double width = tl.totalInstructions() / 2.5;
    EXPECT_EQ(segmentTimeline(tl, width).size(), 2u);
}

} // namespace
