/**
 * @file
 * Unit tests for the ground-truth power model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/sim/core_model.hpp"
#include "ppep/sim/hw_power_model.hpp"

namespace {

using namespace ppep::sim;

struct Fixture
{
    ChipConfig cfg = fx8320Config();
    HwPowerModel model{cfg};
    std::vector<CoreActivity> acts;

    Fixture()
    {
        acts.assign(cfg.coreCount(), CoreActivity{});
    }

    std::vector<CorePowerInput>
    inputs(double voltage, double freq)
    {
        std::vector<CorePowerInput> in(cfg.coreCount());
        for (std::size_t c = 0; c < cfg.coreCount(); ++c) {
            in[c].activity = &acts[c];
            in[c].voltage = voltage;
            in[c].freq_ghz = freq;
        }
        return in;
    }

    PowerBreakdown
    compute(double voltage, double freq, bool pg_all = false,
            double temp = 320.0)
    {
        const std::vector<bool> gated(cfg.n_cus, pg_all);
        const std::vector<double> volts(cfg.n_cus, voltage);
        const std::vector<double> freqs(cfg.n_cus, freq);
        return model.compute(inputs(voltage, freq), gated, pg_all, volts,
                             freqs, cfg.nb.vf_hi, temp, 0.02);
    }

    /** Give core @p c a busy tick of realistically proportioned
     *  activity (IPC ~1.3 at 3.5 GHz over a 20 ms tick). */
    void
    makeBusy(std::size_t c, double scale = 1.0)
    {
        CoreActivity &a = acts[c];
        a.busy = true;
        a.instructions = 80e6 * scale;
        a.cycles = 62e6 * scale;
        const double i = a.instructions;
        a.events[eventIndex(Event::RetiredUop)] = 1.3 * i;
        a.events[eventIndex(Event::FpuPipeAssignment)] = 0.3 * i;
        a.events[eventIndex(Event::InstCacheFetch)] = 0.25 * i;
        a.events[eventIndex(Event::DataCacheAccess)] = 0.4 * i;
        a.events[eventIndex(Event::RequestToL2)] = 0.02 * i;
        a.events[eventIndex(Event::RetiredBranch)] = 0.15 * i;
        a.events[eventIndex(Event::RetiredMispBranch)] = 0.003 * i;
        a.events[eventIndex(Event::L2CacheMiss)] = 0.005 * i;
        a.events[eventIndex(Event::DispatchStall)] = 0.3 * i;
        a.events[eventIndex(Event::ClocksNotHalted)] = a.cycles;
        a.events[eventIndex(Event::RetiredInst)] = i;
        a.events[eventIndex(Event::MabWaitCycles)] = 0.1 * i;
        a.l3_accesses = 0.005 * i;
        a.dram_accesses = 0.002 * i;
    }
};

TEST(HwPower, BreakdownSumsToTotal)
{
    Fixture f;
    f.makeBusy(0);
    f.makeBusy(3);
    const auto p = f.compute(1.32, 3.5);
    EXPECT_NEAR(p.total,
                p.base + p.housekeeping + p.nb_static + p.nb_dynamic +
                    p.cuIdleTotal() + p.coreDynamicTotal(),
                1e-9);
}

TEST(HwPower, IdleChipHasNoDynamic)
{
    Fixture f;
    const auto p = f.compute(1.32, 3.5);
    EXPECT_DOUBLE_EQ(p.coreDynamicTotal(), 0.0);
    EXPECT_DOUBLE_EQ(p.nb_dynamic, 0.0);
    EXPECT_GT(p.total, 20.0); // statics remain
}

TEST(HwPower, FullLoadWithinTdpScale)
{
    // Eight CPU-heavy cores at the top state must land in a plausible
    // 125 W-class envelope: well above idle, at or below ~135 W.
    Fixture f;
    for (std::size_t c = 0; c < f.cfg.coreCount(); ++c)
        f.makeBusy(c);
    const auto p = f.compute(1.32, 3.5);
    EXPECT_GT(p.total, 80.0);
    EXPECT_LT(p.total, 175.0);
}

TEST(HwPower, DynamicScalesWithVoltageAlpha)
{
    Fixture f;
    f.makeBusy(0);
    const auto hi = f.compute(1.32, 3.5);
    const auto lo = f.compute(0.888, 3.5);
    const double expected =
        std::pow(0.888 / 1.32, f.cfg.power.alpha_true);
    EXPECT_NEAR(lo.coreDynamicTotal() / hi.coreDynamicTotal(), expected,
                1e-9);
}

TEST(HwPower, LeakageGrowsWithTemperature)
{
    Fixture f;
    const auto cold = f.compute(1.32, 3.5, false, 305.0);
    const auto warm = f.compute(1.32, 3.5, false, 335.0);
    EXPECT_GT(warm.cuIdleTotal(), cold.cuIdleTotal());
    EXPECT_GT(warm.nb_static, cold.nb_static);
    // Base power is temperature-independent.
    EXPECT_DOUBLE_EQ(warm.base, cold.base);
}

TEST(HwPower, LeakageGrowsWithVoltage)
{
    Fixture f;
    EXPECT_GT(f.model.cuIdlePower(1.32, 3.5, 320.0),
              f.model.cuIdlePower(0.888, 1.4, 320.0));
}

TEST(HwPower, GatingLeavesResidual)
{
    Fixture f;
    const auto on = f.compute(1.32, 3.5, false);
    const auto off = f.compute(1.32, 3.5, true);
    EXPECT_LT(off.cuIdleTotal(), on.cuIdleTotal());
    EXPECT_NEAR(off.cuIdleTotal(),
                on.cuIdleTotal() * f.cfg.power.pg_residual, 1e-9);
    EXPECT_NEAR(off.nb_static, on.nb_static * f.cfg.power.pg_residual,
                1e-9);
    // Fully gated chip: housekeeping stops, base persists.
    EXPECT_DOUBLE_EQ(off.housekeeping, 0.0);
    EXPECT_DOUBLE_EQ(off.base, f.cfg.power.base_power_w);
}

TEST(HwPower, ActivityFactorScalesCoreDynamic)
{
    Fixture f;
    f.makeBusy(0);
    auto in = f.inputs(1.32, 3.5);
    const std::vector<bool> gated(f.cfg.n_cus, false);
    const std::vector<double> volts(f.cfg.n_cus, 1.32);
    const std::vector<double> freqs(f.cfg.n_cus, 3.5);
    const auto nominal = f.model.compute(in, gated, false, volts, freqs,
                                         f.cfg.nb.vf_hi, 320.0, 0.02);
    in[0].activity_factor = 1.10;
    const auto hot = f.model.compute(in, gated, false, volts, freqs,
                                     f.cfg.nb.vf_hi, 320.0, 0.02);
    EXPECT_NEAR(hot.core_dynamic[0] / nominal.core_dynamic[0], 1.10,
                1e-9);
}

TEST(HwPower, NbDynamicTracksAccessCounts)
{
    Fixture f;
    f.makeBusy(0);
    const auto base = f.compute(1.32, 3.5);
    f.acts[0].l3_accesses *= 2.0;
    f.acts[0].dram_accesses *= 2.0;
    const auto doubled = f.compute(1.32, 3.5);
    EXPECT_NEAR(doubled.nb_dynamic / base.nb_dynamic, 2.0, 1e-9);
}

TEST(HwPower, NbDynamicQuadraticInNbVoltage)
{
    Fixture f;
    f.makeBusy(0);
    const std::vector<bool> gated(f.cfg.n_cus, false);
    const std::vector<double> volts(f.cfg.n_cus, 1.32);
    const std::vector<double> freqs(f.cfg.n_cus, 3.5);
    const auto hi =
        f.model.compute(f.inputs(1.32, 3.5), gated, false, volts, freqs,
                        f.cfg.nb.vf_hi, 320.0, 0.02);
    const auto lo =
        f.model.compute(f.inputs(1.32, 3.5), gated, false, volts, freqs,
                        f.cfg.nb.vf_lo, 320.0, 0.02);
    // The paper's what-if: 20% NB voltage drop -> -36% NB dynamic.
    EXPECT_NEAR(lo.nb_dynamic / hi.nb_dynamic, 0.64, 0.001);
}

TEST(HwPower, PhenomConfigProducesSaneIdle)
{
    const ChipConfig cfg = phenomIIConfig();
    HwPowerModel model(cfg);
    std::vector<CoreActivity> acts(cfg.coreCount());
    std::vector<CorePowerInput> in(cfg.coreCount());
    for (std::size_t c = 0; c < cfg.coreCount(); ++c) {
        in[c].activity = &acts[c];
        in[c].voltage = 1.35;
        in[c].freq_ghz = 3.2;
    }
    const std::vector<bool> gated(cfg.n_cus, false);
    const std::vector<double> volts(cfg.n_cus, 1.35);
    const std::vector<double> freqs(cfg.n_cus, 3.2);
    const auto p = model.compute(in, gated, false, volts, freqs,
                                 cfg.nb.vf_hi, 320.0, 0.02);
    EXPECT_GT(p.total, 15.0);
    EXPECT_LT(p.total, 70.0);
}

} // namespace
