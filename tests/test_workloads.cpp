/**
 * @file
 * Unit tests for the synthetic benchmark suite and combination builder.
 */

#include <gtest/gtest.h>

#include <set>

#include "ppep/sim/chip.hpp"
#include "ppep/workloads/microbench.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::workloads;

TEST(Suite, FiftyTwoPrograms)
{
    EXPECT_EQ(Suite::all().size(), 52u);
    EXPECT_EQ(Suite::bySuite(SuiteId::Spec).size(), 29u);
    EXPECT_EQ(Suite::bySuite(SuiteId::Parsec).size(), 13u);
    EXPECT_EQ(Suite::bySuite(SuiteId::Npb).size(), 10u);
}

TEST(Suite, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &p : Suite::all())
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
}

TEST(Suite, AnchorsExist)
{
    EXPECT_TRUE(Suite::exists("433.milc"));
    EXPECT_TRUE(Suite::exists("458.sjeng"));
    EXPECT_FALSE(Suite::exists("999.bogus"));
}

TEST(Suite, MilcIsMemoryBoundSjengIsNot)
{
    const auto &milc = Suite::byName("433.milc");
    const auto &sjeng = Suite::byName("458.sjeng");
    auto leading = [](const BenchmarkProfile &p) {
        double s = 0.0;
        for (const auto &ph : p.phases)
            s += ph.leading_per_inst;
        return s / static_cast<double>(p.phases.size());
    };
    EXPECT_GT(leading(milc), 5.0 * leading(sjeng));
}

TEST(Suite, AllPhasesValidate)
{
    for (const auto &p : Suite::all())
        for (const auto &ph : p.phases)
            EXPECT_NO_FATAL_FAILURE(ph.validate()) << p.name;
}

TEST(Suite, ProfilesAreDeterministic)
{
    // Two lookups return identical phase data (built once, cached).
    const auto &a = Suite::byName("403.gcc");
    const auto &b = Suite::byName("403.gcc");
    EXPECT_EQ(&a, &b);
}

TEST(Suite, RapidProfilesHaveShortPhases)
{
    for (const char *name : {"dedup", "IS", "DC"}) {
        const auto &p = Suite::byName(name);
        EXPECT_GT(p.phases.size(), 15u) << name;
        double mean_len = p.totalInstructions() /
                          static_cast<double>(p.phases.size());
        EXPECT_LT(mean_len, 1e8) << name;
    }
}

TEST(Suite, ShortBenchmarksAreShort)
{
    // dedup and IS have "much shorter execution times" (paper IV-B2).
    EXPECT_LT(Suite::byName("dedup").totalInstructions(), 4.5e9);
    EXPECT_LT(Suite::byName("IS").totalInstructions(), 4.5e9);
    EXPECT_GT(Suite::byName("444.namd").totalInstructions(), 9e9);
}

TEST(Suite, MakeJobRunsOnce)
{
    auto job = Suite::byName("456.hmmer").makeJob();
    // Slight overshoot absorbs floating-point dust from the per-phase
    // accumulation; a finite job must not survive its total work.
    job->advance(job->totalInstructions() * 1.0001);
    EXPECT_TRUE(job->finished());
}

TEST(Suite, MakeLoopingJobLoops)
{
    auto job = Suite::byName("456.hmmer").makeLoopingJob();
    job->advance(job->totalInstructions() * 2.5);
    EXPECT_FALSE(job->finished());
}

TEST(Combos, OneHundredFiftyTwoTotal)
{
    const auto &combos = allCombinations();
    EXPECT_EQ(combos.size(), 152u);
    EXPECT_EQ(combinationsBySuite(SuiteId::Spec).size(), 61u);
    EXPECT_EQ(combinationsBySuite(SuiteId::Parsec).size(), 51u);
    EXPECT_EQ(combinationsBySuite(SuiteId::Npb).size(), 40u);
}

TEST(Combos, SpecGroupSizesMatchPaper)
{
    // 29 singles, 15 doubles, 10 triples, 7 quads (Sec. IV-B1).
    std::array<std::size_t, 5> by_size{};
    for (const auto *c : combinationsBySuite(SuiteId::Spec))
        ++by_size[c->instances.size()];
    EXPECT_EQ(by_size[1], 29u);
    EXPECT_EQ(by_size[2], 15u);
    EXPECT_EQ(by_size[3], 10u);
    EXPECT_EQ(by_size[4], 7u);
}

TEST(Combos, NamesUnique)
{
    std::set<std::string> names;
    for (const auto &c : allCombinations())
        EXPECT_TRUE(names.insert(c.name).second) << c.name;
}

TEST(Combos, AllInstancesResolvable)
{
    for (const auto &c : allCombinations())
        for (const auto &inst : c.instances)
            EXPECT_TRUE(Suite::exists(inst)) << c.name << ": " << inst;
}

TEST(Combos, Fig6DoubleExists)
{
    bool found = false;
    for (const auto &c : allCombinations())
        found = found || c.name == "400+401";
    EXPECT_TRUE(found);
}

TEST(Combos, ThreadCountsAreOneToEight)
{
    for (const auto *c : combinationsBySuite(SuiteId::Parsec)) {
        EXPECT_GE(c->instances.size(), 1u);
        EXPECT_LE(c->instances.size(), 8u);
    }
}

TEST(Launch, SpecInstancesLandOnDistinctCus)
{
    ppep::sim::Chip chip(ppep::sim::fx8320Config(), 1);
    const Combination *quad = nullptr;
    for (const auto &c : allCombinations())
        if (c.instances.size() == 4 && c.suite == SuiteId::Spec)
            quad = &c;
    ASSERT_NE(quad, nullptr);
    const auto cores = launch(chip, *quad);
    ASSERT_EQ(cores.size(), 4u);
    std::set<std::size_t> cus;
    for (std::size_t core : cores)
        cus.insert(core / chip.config().cores_per_cu);
    EXPECT_EQ(cus.size(), 4u);
}

TEST(Launch, EightThreadsFillAllCores)
{
    ppep::sim::Chip chip(ppep::sim::fx8320Config(), 1);
    const auto combo = replicate("CG", 8);
    const auto cores = launch(chip, combo);
    std::set<std::size_t> unique(cores.begin(), cores.end());
    EXPECT_EQ(unique.size(), 8u);
}

TEST(Launch, ClearsPreviousJobs)
{
    ppep::sim::Chip chip(ppep::sim::fx8320Config(), 1);
    launch(chip, replicate("EP", 8));
    launch(chip, replicate("EP", 1));
    std::size_t busy = 0;
    for (std::size_t c = 0; c < 8; ++c)
        busy += chip.job(c) != nullptr;
    EXPECT_EQ(busy, 1u);
}

TEST(Replicate, BuildsNamedCombo)
{
    const auto c = replicate("433.milc", 3);
    EXPECT_EQ(c.instances.size(), 3u);
    EXPECT_EQ(c.name, "433.milc x3");
    EXPECT_EQ(c.suite, SuiteId::Spec);
}

TEST(Microbench, BenchAIsNbSilent)
{
    auto job = makeBenchA();
    const auto &p = job->currentPhase();
    EXPECT_DOUBLE_EQ(p.l2miss_per_inst, 0.0);
    EXPECT_DOUBLE_EQ(p.leading_per_inst, 0.0);
    EXPECT_DOUBLE_EQ(p.l2req_per_inst, 0.0);
}

TEST(Microbench, BenchAIsSteadySinglePhaseLoop)
{
    auto job = makeBenchA();
    EXPECT_EQ(job->phaseCount(), 1u);
    job->advance(5e9);
    EXPECT_FALSE(job->finished());
}

TEST(Microbench, HeaterBurnsMoreThanBenchA)
{
    // The heater must dissipate clearly more dynamic power than bench_A.
    ppep::sim::Chip hot(ppep::sim::fx8320Config(), 1);
    ppep::sim::Chip mild(ppep::sim::fx8320Config(), 1);
    for (std::size_t c = 0; c < 8; ++c) {
        hot.setJob(c, makeHeater());
        mild.setJob(c, makeBenchA());
    }
    double p_hot = 0.0, p_mild = 0.0;
    for (int i = 0; i < 20; ++i) {
        p_hot += hot.step().truth.power.coreDynamicTotal();
        p_mild += mild.step().truth.power.coreDynamicTotal();
    }
    EXPECT_GT(p_hot, 1.3 * p_mild);
}

// Property sweep: every suite's combinations launch cleanly on the
// FX-8320 topology.
class LaunchSweep : public ::testing::TestWithParam<SuiteId>
{
};

TEST_P(LaunchSweep, AllCombosLaunch)
{
    ppep::sim::Chip chip(ppep::sim::fx8320Config(), 1);
    for (const auto *c : combinationsBySuite(GetParam())) {
        const auto cores = launch(chip, *c);
        EXPECT_EQ(cores.size(), c->instances.size()) << c->name;
    }
}

INSTANTIATE_TEST_SUITE_P(Suites, LaunchSweep,
                         ::testing::Values(SuiteId::Spec, SuiteId::Parsec,
                                           SuiteId::Npb));

} // namespace
