/**
 * @file
 * Record/replay tests: a recorded interval stream must replay bit-
 * identically through the governor/telemetry pipeline (DigestSink
 * digests equal to the live run, for plain, heterogeneous-with-tenants
 * and fault-hardened fleets); a truncated, corrupt, foreign, or
 * wrong-platform replay file must be rejected fatally before the first
 * frame is served; and the warm replay ingest path must never touch
 * the heap.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "ppep/runtime/fleet.hpp"
#include "ppep/runtime/model_store.hpp"
#include "ppep/runtime/recorder.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/trace/replay.hpp"
#include "ppep/workloads/suite.hpp"

// --- allocation counting hook (see test_zero_alloc.cpp) ------------------

namespace {
std::atomic<std::size_t> g_news{0};
std::atomic<bool> g_counting{false};

void *
countedAlloc(std::size_t size)
{
    if (g_counting.load(std::memory_order_relaxed))
        g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}
} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using namespace ppep;
using runtime::Fleet;
using runtime::FleetSessionSpec;
using runtime::FleetSpec;
using runtime::Session;

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

/** One cache dir per test process (see test_runtime_fleet.cpp). */
const std::string &
cacheDir()
{
    static const std::string dir = [] {
        const std::string d = ::testing::TempDir() +
                              "ppep_replay_cache_" +
                              std::to_string(::getpid());
        std::filesystem::remove_all(d);
        return d;
    }();
    return dir;
}

/** Per-process scratch path for a replay file. */
std::string
tracePath(const std::string &tag)
{
    return ::testing::TempDir() + "ppep_replay_" + tag + "_" +
           std::to_string(::getpid()) + ".trc";
}

FleetSpec
baseSpec(std::size_t n_sessions)
{
    static const std::vector<std::string> programs = {"EP", "CG",
                                                      "458.sjeng"};
    FleetSpec spec;
    spec.cfg = sim::fx8320Config();
    spec.training_seed = 91;
    spec.training_combos = smallTrainingSet();
    spec.store.emplace(cacheDir());
    spec.warmup = 1;
    spec.intervals = 6;
    for (std::size_t i = 0; i < n_sessions; ++i) {
        FleetSessionSpec ss;
        ss.seed = 7 + i;
        ss.pg = (i % 2) == 0;
        ss.one_per_cu = {programs[i % programs.size()]};
        spec.sessions.push_back(std::move(ss));
    }
    return spec;
}

/** 5 sessions over 3 distinct platforms, 2 tenants on the first. */
FleetSpec
heteroSpec()
{
    FleetSpec spec = baseSpec(5);
    spec.sessions[2].cfg = sim::phenomIIConfig();
    spec.sessions[3].cfg = sim::phenomIIConfig();
    spec.sessions[4].cfg = sim::fx8320NbDvfsConfig();
    spec.sessions[2].pg = false;
    spec.sessions[3].pg = false;
    spec.sessions[0].one_per_cu.clear();
    spec.sessions[0].tenants = {
        {"alpha", {0, 1, 2, 3}, {{0, "EP", true}}},
        {"beta", {4, 5, 6, 7}, {{4, "CG", true}}},
    };
    return spec;
}

/** Every frame field must survive the round trip bitwise. */
void
expectRecordEqual(const trace::IntervalRecord &out,
                  const trace::IntervalRecord &in)
{
    EXPECT_EQ(out.duration_s, in.duration_s);
    EXPECT_EQ(out.sensor_power_w, in.sensor_power_w);
    EXPECT_EQ(out.diode_temp_k, in.diode_temp_k);
    EXPECT_EQ(out.true_power_w, in.true_power_w);
    EXPECT_EQ(out.true_dynamic_w, in.true_dynamic_w);
    EXPECT_EQ(out.true_idle_w, in.true_idle_w);
    EXPECT_EQ(out.true_nb_power_w, in.true_nb_power_w);
    EXPECT_EQ(out.true_temp_k, in.true_temp_k);
    EXPECT_EQ(out.nb_utilization, in.nb_utilization);
    EXPECT_EQ(out.busy_cores, in.busy_cores);
    EXPECT_EQ(out.nb_vf.voltage, in.nb_vf.voltage);
    EXPECT_EQ(out.nb_vf.freq_ghz, in.nb_vf.freq_ghz);
    EXPECT_EQ(out.cu_vf, in.cu_vf);
    EXPECT_EQ(out.pmc, in.pmc);
    EXPECT_EQ(out.oracle, in.oracle);
}

TEST(ReplayTrace, RoundTripPreservesEveryFrameField)
{
    const sim::ChipConfig cfg = sim::fx8320Config();
    sim::Chip chip(cfg, 3);
    workloads::launch(chip, workloads::replicate("433.milc", 4), true);
    trace::Collector col(chip);
    col.collect(2);

    const double times[] = {0.2, 0.4, 0.8};
    const double caps[] = {60.0, 55.0, 50.0};
    std::vector<trace::IntervalRecord> recs;
    std::vector<trace::ReplayHealth> healths(3);
    healths[1].msr_retries = 3;
    healths[1].sensor_rejects = 1;
    healths[1].timing_overrun = true;
    healths[1].ticks = 9;
    healths[2].pmc_wrap_events = 2;
    healths[2].total_fault_events = 5;

    trace::ReplayStreamBuilder builder("unit", 0xfeedfaceULL,
                                       cfg.coreCount(), cfg.n_cus, true);
    for (std::size_t i = 0; i < 3; ++i) {
        chip.setAllVf(i);
        recs.push_back(col.collectInterval());
        builder.addFrame(times[i], caps[i], recs.back(), &healths[i]);
    }
    EXPECT_EQ(builder.frameCount(), 3u);
    EXPECT_EQ(builder.frameStride(),
              trace::ReplayStreamBuilder::strideFor(cfg.coreCount(),
                                                    cfg.n_cus, true));

    const std::string path = tracePath("unit");
    trace::writeReplayFile(path, {&builder});
    trace::ReplayFile file(path);
    ASSERT_EQ(file.streamCount(), 1u);
    const trace::ReplayFile::Stream *s = file.findStream("unit");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->fingerprint, 0xfeedfaceULL);
    EXPECT_EQ(s->frame_count, 3u);
    EXPECT_EQ(s->n_cores, cfg.coreCount());
    EXPECT_EQ(s->n_cus, cfg.n_cus);
    EXPECT_TRUE(s->with_health);
    EXPECT_EQ(file.findStream("absent"), nullptr);

    trace::ReplaySource src(file, 0, 0xfeedfaceULL);
    EXPECT_EQ(src.frameCount(), 3u);
    EXPECT_TRUE(src.hasHealth());
    trace::IntervalRecord out;
    for (std::size_t i = 0; i < 3; ++i) {
        SCOPED_TRACE("frame " + std::to_string(i));
        ASSERT_FALSE(src.done());
        src.collectIntervalInto(out);
        EXPECT_EQ(src.frameTimeS(), times[i]);
        EXPECT_EQ(src.frameCapW(), caps[i]);
        expectRecordEqual(out, recs[i]);
        const trace::ReplayHealth &h = src.frameHealth();
        EXPECT_EQ(h.msr_retries, healths[i].msr_retries);
        EXPECT_EQ(h.msr_failed_cores, healths[i].msr_failed_cores);
        EXPECT_EQ(h.pmc_rejected_cores, healths[i].pmc_rejected_cores);
        EXPECT_EQ(h.substituted_cores, healths[i].substituted_cores);
        EXPECT_EQ(h.zeroed_cores, healths[i].zeroed_cores);
        EXPECT_EQ(h.sensor_rejects, healths[i].sensor_rejects);
        EXPECT_EQ(h.diode_rejects, healths[i].diode_rejects);
        EXPECT_EQ(h.ticks, healths[i].ticks);
        EXPECT_EQ(h.timing_overrun, healths[i].timing_overrun);
        EXPECT_EQ(h.pmc_wrap_events, healths[i].pmc_wrap_events);
        EXPECT_EQ(h.total_fault_events, healths[i].total_fault_events);
    }
    EXPECT_TRUE(src.done());
    EXPECT_EQ(src.framesConsumed(), 3u);

    src.rewind();
    EXPECT_FALSE(src.done());
    src.collectIntervalInto(out);
    expectRecordEqual(out, recs[0]);
}

// --- file validation ------------------------------------------------------

/** Write a minimal valid single-stream file and return its path. */
std::string
writeSmallFile(const std::string &tag, std::uint64_t fingerprint)
{
    const sim::ChipConfig cfg = sim::fx8320Config();
    sim::Chip chip(cfg, 3);
    workloads::launch(chip, workloads::replicate("EP", 2), true);
    trace::Collector col(chip);
    col.collect(1);
    trace::ReplayStreamBuilder builder("s0", fingerprint,
                                       cfg.coreCount(), cfg.n_cus,
                                       false);
    for (std::size_t i = 0; i < 2; ++i) {
        const trace::IntervalRecord rec = col.collectInterval();
        builder.addFrame(0.2 + 0.2 * static_cast<double>(i), 60.0, rec,
                         nullptr);
    }
    const std::string path = tracePath(tag);
    trace::writeReplayFile(path, {&builder});
    return path;
}

TEST(ReplayDeathTest, FileSmallerThanHeaderIsRejected)
{
    const std::string path = writeSmallFile("tiny", 1);
    std::filesystem::resize_file(path, 16);
    EXPECT_DEATH({ trace::ReplayFile f(path); },
                 "smaller than the file header");
}

TEST(ReplayDeathTest, TruncatedFileIsRejected)
{
    const std::string path = writeSmallFile("trunc", 1);
    const auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full - 16);
    EXPECT_DEATH({ trace::ReplayFile f(path); }, "truncated or padded");
}

TEST(ReplayDeathTest, CorruptFramePayloadIsRejected)
{
    const std::string path = writeSmallFile("corrupt", 1);
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(-1, std::ios::end);
        char byte = 0;
        f.get(byte);
        f.seekp(-1, std::ios::end);
        f.put(static_cast<char>(byte ^ 0x5a));
    }
    EXPECT_DEATH({ trace::ReplayFile f(path); },
                 "frame payload is corrupt");
}

TEST(ReplayDeathTest, ForeignMagicIsRejected)
{
    const std::string path = writeSmallFile("magic", 1);
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekp(0);
        f.put('X');
    }
    EXPECT_DEATH({ trace::ReplayFile f(path); },
                 "not a PPEP replay file");
}

TEST(ReplayDeathTest, WrongPlatformFingerprintIsRejected)
{
    // A stream recorded on one platform fingerprint can never be bound
    // to a session configured for another.
    const std::uint64_t fp =
        runtime::platformFingerprint(sim::fx8320Config());
    const std::string path = writeSmallFile("silicon", fp);
    trace::ReplayFile file(path);
    EXPECT_DEATH({ trace::ReplaySource s(file, 0, fp + 1); },
                 "recorded on different silicon");
}

TEST(ReplayDeathTest, ReadingPastTheLastFrameIsFatal)
{
    const std::string path = writeSmallFile("exhaust", 1);
    trace::ReplayFile file(path);
    trace::ReplaySource src(file, 0, 1);
    trace::IntervalRecord rec;
    src.collectIntervalInto(rec);
    src.collectIntervalInto(rec);
    ASSERT_TRUE(src.done());
    EXPECT_DEATH(src.collectIntervalInto(rec), "exhausted");
}

// --- session-level record -> replay --------------------------------------

TEST(SessionReplay, RecordedSessionReplaysBitIdentically)
{
    const sim::ChipConfig cfg = sim::fx8320Config();
    const std::uint64_t fp = runtime::platformFingerprint(cfg);
    const std::string path = tracePath("session");

    runtime::DigestSink live_digest;
    runtime::RecorderSink recorder("solo", fp, cfg.coreCount(),
                                   cfg.n_cus, false);
    auto live = Session::builder(cfg)
                    .seed(9)
                    .trainingSeed(91)
                    .trainingCombos(smallTrainingSet())
                    .store(runtime::ModelStore(cacheDir()))
                    .onePerCu({"EP"})
                    .warmup(1)
                    .sink(live_digest)
                    .sink(recorder)
                    .build();
    EXPECT_EQ(live.drive(6), 6u);
    ASSERT_FALSE(recorder.failed()) << recorder.error();
    EXPECT_EQ(recorder.stream().frameCount(), 6u);
    trace::writeReplayFile(path, {&recorder.stream()});

    trace::ReplayFile file(path);
    trace::ReplaySource src(file, 0, fp);
    runtime::DigestSink replay_digest;
    auto replayed = Session::builder(cfg)
                        .seed(9)
                        .trainingSeed(91)
                        .trainingCombos(smallTrainingSet())
                        .store(runtime::ModelStore(cacheDir()))
                        .onePerCu({"EP"})
                        .replay(src)
                        .sink(replay_digest)
                        .build();
    EXPECT_EQ(replayed.drive(6), 6u);
    EXPECT_EQ(src.framesConsumed(), 6u);

    EXPECT_EQ(live_digest.intervals(), 6u);
    EXPECT_EQ(replay_digest.intervals(), 6u);
    EXPECT_EQ(replay_digest.digest(), live_digest.digest());
}

// --- fleet-level record -> replay ----------------------------------------

/** Record @p spec, replay it, and require digest equality per session. */
void
expectFleetRoundTrip(FleetSpec spec, const std::string &tag)
{
    const std::size_t n = spec.sessions.size();
    const std::string path = tracePath(tag);
    spec.record_path = path;
    Fleet live_fleet(spec);
    const auto live = live_fleet.run(2);
    ASSERT_EQ(live.failed, 0u);
    ASSERT_EQ(live.completed, n);

    spec.record_path.clear();
    spec.replay_path = path;
    Fleet replay_fleet(std::move(spec));
    const auto replayed = replay_fleet.run(2);
    ASSERT_EQ(replayed.failed, 0u);
    ASSERT_EQ(replayed.completed, n);

    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(replayed.sessions[i].telemetry_digest,
                  live.sessions[i].telemetry_digest)
            << "session " << i;
        EXPECT_EQ(replayed.sessions[i].intervals,
                  live.sessions[i].intervals)
            << "session " << i;
        EXPECT_EQ(replayed.sessions[i].name, live.sessions[i].name);
    }
}

TEST(FleetReplay, RecordThenReplayMatchesLiveDigests)
{
    expectFleetRoundTrip(baseSpec(3), "fleet");
}

TEST(FleetReplay, HeterogeneousTenantFleetReplaysBitIdentically)
{
    expectFleetRoundTrip(heteroSpec(), "hetero");
}

TEST(FleetReplay, HardenedSessionReplaysWithHealth)
{
    auto spec = baseSpec(3);
    spec.sessions[1].faults = sim::FaultPlan::parse(
        "msr=0.3,sensor_drop=0.2,diode_spike=0.1,jitter=0.3");
    expectFleetRoundTrip(spec, "hardened");

    // The faulted session's stream must carry the health block; its
    // clean neighbours must not pay for one.
    trace::ReplayFile file(tracePath("hardened"));
    ASSERT_EQ(file.streamCount(), 3u);
    const trace::ReplayFile::Stream *faulted = file.findStream("s1");
    ASSERT_NE(faulted, nullptr);
    EXPECT_TRUE(faulted->with_health);
    const trace::ReplayFile::Stream *clean = file.findStream("s0");
    ASSERT_NE(clean, nullptr);
    EXPECT_FALSE(clean->with_health);
}

TEST(FleetReplayDeathTest, MissingStreamNameIsFatal)
{
    auto spec = baseSpec(2);
    spec.record_path = tracePath("names");
    Fleet rec_fleet(spec);
    ASSERT_EQ(rec_fleet.run(1).failed, 0u);

    spec.record_path.clear();
    spec.replay_path = tracePath("names");
    spec.sessions[0].name = "renamed";
    Fleet replay_fleet(std::move(spec));
    EXPECT_DEATH(replay_fleet.run(1), "has no stream for session");
}

TEST(FleetReplayDeathTest, ShortRecordingCannotServeLongerRun)
{
    auto spec = baseSpec(1);
    spec.record_path = tracePath("short");
    Fleet rec_fleet(spec);
    ASSERT_EQ(rec_fleet.run(1).failed, 0u);

    spec.record_path.clear();
    spec.replay_path = tracePath("short");
    spec.intervals = 8; // recorded 6
    Fleet replay_fleet(std::move(spec));
    EXPECT_DEATH(replay_fleet.run(1), "replay stream exhausted after");
}

TEST(FleetReplayDeathTest, ScheduleMismatchIsFatal)
{
    // The replayed caps are cross-checked against the session's own
    // schedule every interval: replaying an uncapped recording under a
    // 60 W schedule must die, not silently re-label the stream.
    auto spec = baseSpec(1);
    spec.record_path = tracePath("caps");
    Fleet rec_fleet(spec);
    ASSERT_EQ(rec_fleet.run(1).failed, 0u);

    spec.record_path.clear();
    spec.replay_path = tracePath("caps");
    spec.default_schedule = ppep::governor::CapSchedule(60.0);
    Fleet replay_fleet(std::move(spec));
    EXPECT_DEATH(replay_fleet.run(1),
                 "does not match the session schedule");
}

// --- zero-allocation audit of the warm replay path ------------------------

TEST(ZeroAllocReplay, WarmReplayIntervalIsAllocationFree)
{
    const sim::ChipConfig cfg = sim::fx8320Config();
    const std::uint64_t fp = runtime::platformFingerprint(cfg);
    const std::string path = tracePath("zeroalloc");

    runtime::RecorderSink recorder("solo", fp, cfg.coreCount(),
                                   cfg.n_cus, false);
    auto live = Session::builder(cfg)
                    .seed(9)
                    .trainingSeed(91)
                    .trainingCombos(smallTrainingSet())
                    .store(runtime::ModelStore(cacheDir()))
                    .onePerCu({"EP"})
                    .warmup(1)
                    .sink(recorder)
                    .build();
    EXPECT_EQ(live.drive(40), 40u);
    trace::writeReplayFile(path, {&recorder.stream()});

    trace::ReplayFile file(path);
    trace::ReplaySource src(file, 0, fp);
    runtime::DigestSink digest;
    auto replayed = Session::builder(cfg)
                        .seed(9)
                        .trainingSeed(91)
                        .trainingCombos(smallTrainingSet())
                        .store(runtime::ModelStore(cacheDir()))
                        .onePerCu({"EP"})
                        .replay(src)
                        .sink(digest)
                        .build();

    replayed.drive(5); // warm the decode scratch and governor buffers

    // drive() pays a fixed setup cost per call that sits outside the
    // warm path (see test_zero_alloc.cpp). Driving 1 interval and then
    // 21 must allocate identically — the 20 extra warm replayed
    // intervals touch the heap zero times.
    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    replayed.drive(1);
    g_counting.store(false, std::memory_order_relaxed);
    const std::size_t setup = g_news.load(std::memory_order_relaxed);

    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    replayed.drive(21);
    g_counting.store(false, std::memory_order_relaxed);
    EXPECT_EQ(g_news.load(std::memory_order_relaxed), setup)
        << "a warm replayed interval allocated";

    EXPECT_EQ(digest.intervals(), 27u);
}

TEST(ZeroAllocReplay, CountingHookIsLive)
{
    g_news.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    auto *p = new std::vector<double>(1024);
    g_counting.store(false, std::memory_order_relaxed);
    delete p;
    EXPECT_GE(g_news.load(std::memory_order_relaxed), 1u);
}

} // namespace
