/**
 * @file
 * Multi-tenant attribution tests: spec validation, the Eq. 7/8
 * ownership split of the idle decomposition, the all-idle-tenant
 * boundary condition, reconciliation with the independently computed
 * chip total at 1e-9 W (deterministic, 10k-interval randomized soak,
 * and from many threads sharing one attributor), plus the session
 * integration that lands attribution in the telemetry stream.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

#include "ppep/model/trainer.hpp"
#include "ppep/runtime/session.hpp"
#include "ppep/runtime/telemetry.hpp"
#include "ppep/runtime/tenant.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/util/rng.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::TenantAttribution;
using runtime::TenantAttributor;
using runtime::TenantJob;
using runtime::TenantSpec;

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

/** Trained FX-8320 stack shared by every test in this binary. */
struct Stack
{
    sim::ChipConfig cfg = sim::fx8320Config();
    model::TrainedModels models;
    Stack()
    {
        model::Trainer trainer(cfg, 91);
        models = trainer.trainAll(smallTrainingSet());
    }
};

const Stack &
stack()
{
    static const Stack s;
    return s;
}

/** alpha owns CUs 0-1 (cores 0-3), beta owns CUs 2-3 (cores 4-7). */
std::vector<TenantSpec>
twoTenants()
{
    return {{"alpha", {0, 1, 2, 3}, {}}, {"beta", {4, 5, 6, 7}, {}}};
}

/** A synthetic interval: @p busy_cores run, the rest are fully idle. */
trace::IntervalRecord
makeRecord(const sim::ChipConfig &cfg,
           const std::vector<std::size_t> &busy_cores, std::size_t vf)
{
    trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.pmc.resize(cfg.coreCount());
    rec.cu_vf.assign(cfg.n_cus, vf);
    for (const std::size_t c : busy_cores) {
        for (std::size_t e = 0; e < sim::kNumPowerEvents; ++e)
            rec.pmc[c][e] = 1e7 * static_cast<double>(e + 1);
        rec.pmc[c][sim::eventIndex(sim::Event::RetiredInst)] = 2.5e8;
    }
    return rec;
}

/** |per-tenant totals + unattributed - chip total| for one result. */
double
reconciliationError(const TenantAttribution &a)
{
    double sum = a.unattributed_w;
    for (const double w : a.total_w)
        sum += w;
    return std::fabs(sum - a.chip_total_w);
}

TEST(TenantValidation, RejectsBadSpecs)
{
    const auto &s = stack();
    const auto &dyn = s.models.dynamic;
    const auto &pg = s.models.pg;

    const std::vector<TenantSpec> empty;
    EXPECT_DEATH(TenantAttributor(s.cfg, dyn, pg, empty),
                 "must not be empty");

    const std::vector<TenantSpec> overlap = {{"a", {0, 1}, {}},
                                             {"b", {1, 2}, {}}};
    EXPECT_DEATH(TenantAttributor(s.cfg, dyn, pg, overlap),
                 "claimed by both");

    const std::vector<TenantSpec> out_of_range = {{"a", {99}, {}}};
    EXPECT_DEATH(TenantAttributor(s.cfg, dyn, pg, out_of_range),
                 "has only");

    const std::vector<TenantSpec> bad_name = {{"no spaces", {0}, {}}};
    EXPECT_DEATH(TenantAttributor(s.cfg, dyn, pg, bad_name),
                 "A-Za-z0-9_-");

    const std::vector<TenantSpec> dup = {{"a", {0}, {}}, {"a", {1}, {}}};
    EXPECT_DEATH(TenantAttributor(s.cfg, dyn, pg, dup), "duplicate");

    const std::vector<TenantSpec> coreless = {{"a", {}, {}}};
    EXPECT_DEATH(TenantAttributor(s.cfg, dyn, pg, coreless),
                 "owns no cores");

    const std::vector<TenantSpec> foreign_job = {
        {"a", {0}, {{5, "EP", true}}}};
    EXPECT_DEATH(TenantAttributor(s.cfg, dyn, pg, foreign_job),
                 "does not own");
}

TEST(TenantValidation, RejectsPlatformWithoutPgSweep)
{
    // Phenom II has no power-gating sweep, so its PgIdleModel is
    // untrained and the Fig. 4 decomposition the split relies on does
    // not exist.
    const auto cfg = sim::phenomIIConfig();
    model::Trainer trainer(cfg, 91);
    const auto models = trainer.trainAll(smallTrainingSet(4));
    const std::vector<TenantSpec> specs = {{"a", {0}, {}},
                                           {"b", {1}, {}}};
    EXPECT_DEATH(
        TenantAttributor(cfg, models.dynamic, models.pg, specs),
        "no power-gating sweep");
}

TEST(TenantAttribution, ReconcilesWithChipTotalDeterministic)
{
    const auto &s = stack();
    const TenantAttributor attr(s.cfg, s.models.dynamic, s.models.pg,
                                twoTenants());
    auto out = attr.makeAttribution();

    for (const bool pg : {false, true}) {
        for (const std::size_t vf : {0u, 2u, 4u}) {
            const auto rec = makeRecord(s.cfg, {0, 1, 5}, vf);
            attr.attributeInto(rec, pg, out);
            EXPECT_LE(reconciliationError(out), 1e-9)
                << "pg=" << pg << " vf=" << vf;
            EXPECT_GT(out.chip_total_w, 0.0);
            for (std::size_t t = 0; t < 2; ++t) {
                EXPECT_GE(out.dynamic_w[t], 0.0);
                EXPECT_GE(out.idle_w[t], 0.0);
            }
            // Every core is owned here: nothing may leak.
            EXPECT_EQ(out.unattributed_w, 0.0);
        }
    }
}

TEST(TenantAttribution, AllIdleTenantChargedOnlyPgIdleShare)
{
    const auto &s = stack();
    const TenantAttributor attr(s.cfg, s.models.dynamic, s.models.pg,
                                twoTenants());
    auto out = attr.makeAttribution();
    const auto &pg = s.models.pg;
    const double n = static_cast<double>(s.cfg.coreCount());

    // beta's cores (4-7) run nothing; alpha keeps the chip awake.
    const std::size_t vf = 2;
    const auto rec = makeRecord(s.cfg, {0, 1, 2, 3}, vf);

    // PG on: beta's CUs are gated, so beta pays only its ownership
    // share of the base/NB floor — its nonzero pg-idle share, and
    // nothing else.
    attr.attributeInto(rec, true, out);
    EXPECT_EQ(out.dynamic_w[1], 0.0);
    const double floor_share =
        4.0 * (pg.pBaseAvg() + pg.pNbAvg()) / n;
    EXPECT_NEAR(out.idle_w[1], floor_share, 1e-12);
    EXPECT_GT(out.idle_w[1], 0.0);
    EXPECT_LE(reconciliationError(out), 1e-9);

    // PG off: beta's two CUs idle at their VF on top of the floor.
    attr.attributeInto(rec, false, out);
    EXPECT_EQ(out.dynamic_w[1], 0.0);
    const double cu_idle = 2.0 * pg.components(vf).p_cu;
    EXPECT_NEAR(out.idle_w[1], floor_share + cu_idle, 1e-12);
    EXPECT_LE(reconciliationError(out), 1e-9);
}

TEST(TenantAttribution, UnownedCoresLandInUnattributed)
{
    const auto &s = stack();
    // Only CU 0 and CU 1 are owned; CUs 2-3 belong to nobody.
    const std::vector<TenantSpec> specs = {{"alpha", {0, 1}, {}},
                                           {"beta", {2, 3}, {}}};
    const TenantAttributor attr(s.cfg, s.models.dynamic, s.models.pg,
                                specs);
    auto out = attr.makeAttribution();

    const auto rec = makeRecord(s.cfg, {0, 2, 6}, 3);
    attr.attributeInto(rec, true, out);
    // Core 6 is busy and unowned: its dynamic power plus the idle
    // shares of cores 4-7 must land in the remainder, not vanish.
    EXPECT_GT(out.unattributed_w, 0.0);
    EXPECT_LE(reconciliationError(out), 1e-9);

    EXPECT_EQ(attr.ownerOf(0), 0);
    EXPECT_EQ(attr.ownerOf(2), 1);
    EXPECT_EQ(attr.ownerOf(6), -1);
}

/** One soak worker: @p intervals randomized records, worst error out. */
double
soakWorstError(const TenantAttributor &attr, const sim::ChipConfig &cfg,
               std::uint64_t seed, std::size_t intervals)
{
    util::Rng rng(seed);
    auto out = attr.makeAttribution();
    trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.pmc.resize(cfg.coreCount());
    rec.cu_vf.assign(cfg.n_cus, 0);

    double worst = 0.0;
    for (std::size_t i = 0; i < intervals; ++i) {
        for (std::size_t cu = 0; cu < cfg.n_cus; ++cu)
            rec.cu_vf[cu] = rng.uniformInt(cfg.vf_table.size());
        for (std::size_t c = 0; c < rec.pmc.size(); ++c) {
            const bool busy = rng.uniform() < 0.6;
            for (std::size_t e = 0; e < sim::kNumPowerEvents; ++e)
                rec.pmc[c][e] = busy ? rng.uniform(0.0, 5e8) : 0.0;
            rec.pmc[c][sim::eventIndex(sim::Event::RetiredInst)] =
                busy ? rng.uniform(1e6, 2e9) : 0.0;
        }
        const bool pg = rng.uniform() < 0.5;
        attr.attributeInto(rec, pg, out);
        worst = std::max(worst, reconciliationError(out));
        for (std::size_t t = 0; t < attr.tenantCount(); ++t) {
            if (!(out.dynamic_w[t] >= 0.0) || !(out.idle_w[t] >= 0.0) ||
                !std::isfinite(out.total_w[t]))
                return 1.0; // poisoned: fails the 1e-9 expectation
        }
    }
    return worst;
}

TEST(TenantAttributionSoak, TenThousandRandomizedIntervalsReconcile)
{
    const auto &s = stack();
    // Leave CU 3 unowned so the soak exercises the remainder path too.
    const std::vector<TenantSpec> specs = {
        {"alpha", {0, 1, 2, 3}, {}}, {"beta", {4, 5}, {}}};
    const TenantAttributor attr(s.cfg, s.models.dynamic, s.models.pg,
                                specs);
    EXPECT_LE(soakWorstError(attr, s.cfg, 2014, 10000), 1e-9);
}

TEST(TenantAttributionConcurrency, SharedAttributorAcrossThreads)
{
    // The attributor is const after construction; N threads attribute
    // through it concurrently, each with its own scratch block. Under
    // TSan this witnesses the read-only contract.
    const auto &s = stack();
    const TenantAttributor attr(s.cfg, s.models.dynamic, s.models.pg,
                                twoTenants());

    constexpr std::size_t kThreads = 4;
    std::vector<double> worst(kThreads, 1.0);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < kThreads; ++t)
        pool.emplace_back([&, t] {
            worst[t] = soakWorstError(attr, s.cfg, 77 + t, 2500);
        });
    for (auto &th : pool)
        th.join();
    for (std::size_t t = 0; t < kThreads; ++t)
        EXPECT_LE(worst[t], 1e-9) << "thread " << t;
}

/** Captures per-interval tenant telemetry for the session test. */
class TenantCaptureSink : public runtime::TelemetrySink
{
  public:
    void
    onInterval(const runtime::IntervalTelemetry &t) override
    {
        ++intervals_;
        if (t.tenants == nullptr || t.tenant_names == nullptr)
            return;
        ++with_tenants_;
        names_ = *t.tenant_names;
        worst_error_ =
            std::max(worst_error_, reconciliationError(*t.tenants));
        for (const double w : t.tenants->total_w)
            min_total_ = std::min(min_total_, w);
    }

    std::size_t intervals_ = 0;
    std::size_t with_tenants_ = 0;
    std::vector<std::string> names_;
    double worst_error_ = 0.0;
    double min_total_ = std::numeric_limits<double>::infinity();
};

TEST(TenantSession, AttributionFlowsIntoTelemetry)
{
    TenantCaptureSink sink;
    std::vector<TenantSpec> specs = twoTenants();
    specs[0].jobs = {{0, "EP", true}};
    specs[1].jobs = {{4, "CG", true}};

    auto session = runtime::Session::builder(sim::fx8320Config())
                       .seed(11)
                       .pg(true)
                       .trainingSeed(91)
                       .trainingCombos(smallTrainingSet())
                       .tenants(specs)
                       .sink(sink)
                       .build();
    ASSERT_NE(session.tenantAttributor(), nullptr);
    EXPECT_EQ(session.tenantAttributor()->tenantCount(), 2u);
    session.drive(8);

    EXPECT_EQ(sink.intervals_, 8u);
    EXPECT_EQ(sink.with_tenants_, 8u);
    ASSERT_EQ(sink.names_.size(), 2u);
    EXPECT_EQ(sink.names_[0], "alpha");
    EXPECT_EQ(sink.names_[1], "beta");
    EXPECT_LE(sink.worst_error_, 1e-9);
    // Both tenants run a looping job: neither total may be zero.
    EXPECT_GT(sink.min_total_, 0.0);
}

TEST(TenantSession, SessionWithoutTenantsCarriesNone)
{
    TenantCaptureSink sink;
    auto session = runtime::Session::builder(sim::fx8320Config())
                       .seed(11)
                       .trainingSeed(91)
                       .trainingCombos(smallTrainingSet())
                       .onePerCu({"EP"})
                       .sink(sink)
                       .build();
    EXPECT_EQ(session.tenantAttributor(), nullptr);
    session.drive(3);
    EXPECT_EQ(sink.intervals_, 3u);
    EXPECT_EQ(sink.with_tenants_, 0u);
}

} // namespace
