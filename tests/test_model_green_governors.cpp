/**
 * @file
 * Tests for the Green Governors CV^2 f baseline model.
 */

#include <gtest/gtest.h>

#include "ppep/model/green_governors.hpp"
#include "ppep/util/rng.hpp"

namespace {

using namespace ppep::model;

std::vector<GgTrainingRow>
syntheticRows(double c0, double c1, double c2, double c3, std::size_t n,
              double noise_sd, ppep::util::Rng &rng)
{
    std::vector<GgTrainingRow> rows;
    for (std::size_t i = 0; i < n; ++i) {
        GgTrainingRow row;
        row.voltage = rng.uniform(0.88, 1.33);
        row.cycle_rate = rng.uniform(1e9, 3e10);
        row.inst_rate = rng.uniform(1e9, 3e10);
        row.power_w = c0 + c1 * row.voltage +
                      row.voltage * row.voltage *
                          (c2 * row.cycle_rate + c3 * row.inst_rate) +
                      rng.gaussian(0.0, noise_sd);
        rows.push_back(row);
    }
    return rows;
}

TEST(GreenGovernors, RecoversGeneratingModel)
{
    ppep::util::Rng rng(1);
    const auto rows =
        syntheticRows(10.0, 15.0, 1.2e-9, 0.4e-9, 2000, 0.0, rng);
    const auto m = GreenGovernorsModel::train(rows);
    ASSERT_TRUE(m.trained());
    for (const auto &row : rows) {
        EXPECT_NEAR(
            m.estimate(row.voltage, row.cycle_rate, row.inst_rate),
            row.power_w, 0.01);
    }
}

TEST(GreenGovernors, RobustToNoise)
{
    ppep::util::Rng rng(2);
    const auto rows =
        syntheticRows(10.0, 15.0, 1.2e-9, 0.4e-9, 5000, 1.0, rng);
    const auto m = GreenGovernorsModel::train(rows);
    double err = 0.0;
    for (const auto &row : rows)
        err += std::abs(m.estimate(row.voltage, row.cycle_rate,
                                   row.inst_rate) -
                        row.power_w) /
               row.power_w;
    EXPECT_LT(err / static_cast<double>(rows.size()), 0.05);
}

TEST(GreenGovernors, PowerGrowsWithActivity)
{
    ppep::util::Rng rng(3);
    const auto rows =
        syntheticRows(10.0, 15.0, 1.2e-9, 0.4e-9, 1000, 0.0, rng);
    const auto m = GreenGovernorsModel::train(rows);
    EXPECT_GT(m.estimate(1.32, 2e10, 2e10),
              m.estimate(1.32, 1e10, 1e10));
}

TEST(GreenGovernors, PowerGrowsWithVoltage)
{
    ppep::util::Rng rng(4);
    const auto rows =
        syntheticRows(10.0, 15.0, 1.2e-9, 0.4e-9, 1000, 0.0, rng);
    const auto m = GreenGovernorsModel::train(rows);
    EXPECT_GT(m.estimate(1.32, 2e10, 2e10),
              m.estimate(0.9, 2e10, 2e10));
}

TEST(GreenGovernors, EstimateFromIntervalUsesVfContext)
{
    ppep::util::Rng rng(5);
    const auto rows =
        syntheticRows(10.0, 15.0, 1.2e-9, 0.4e-9, 1000, 0.0, rng);
    const auto m = GreenGovernorsModel::train(rows);

    ppep::trace::IntervalRecord rec;
    rec.duration_s = 0.2;
    rec.cu_vf = {4, 4, 4, 4};
    rec.pmc.resize(1);
    rec.pmc[0][ppep::sim::eventIndex(
        ppep::sim::Event::ClocksNotHalted)] = 0.7e9 * 0.2;
    rec.pmc[0][ppep::sim::eventIndex(ppep::sim::Event::RetiredInst)] =
        0.5e9 * 0.2;
    const auto table = ppep::sim::fx8320VfTable();
    EXPECT_NEAR(m.estimate(rec, table),
                m.estimate(1.320, 0.7e9, 0.5e9), 1e-9);
}

TEST(GreenGovernorsDeath, UntrainedPanics)
{
    GreenGovernorsModel m;
    EXPECT_DEATH(m.estimate(1.0, 1e9, 1e9), "not trained");
}

TEST(GreenGovernorsDeath, TooFewRows)
{
    std::vector<GgTrainingRow> rows(2);
    EXPECT_DEATH(GreenGovernorsModel::train(rows), "training rows");
}

} // namespace
