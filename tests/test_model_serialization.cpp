/**
 * @file
 * Tests for trained-model persistence: save/load round trips must be
 * prediction-exact, and malformed files must be rejected loudly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ppep/model/serialization.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;
namespace wl = ppep::workloads;

struct Shared
{
    sim::ChipConfig cfg = sim::fx8320Config();
    TrainedModels models;

    Shared()
    {
        Trainer trainer(cfg, 33);
        std::vector<const wl::Combination *> training;
        for (const auto &c : wl::allCombinations())
            if (c.instances.size() == 1 && training.size() < 12)
                training.push_back(&c);
        models = trainer.trainAll(training);
    }

    static const Shared &
    get()
    {
        static const Shared s;
        return s;
    }
};

TrainedModels
roundTrip(const TrainedModels &models, const sim::ChipConfig &cfg)
{
    std::stringstream ss;
    saveModels(models, ss);
    return loadModels(ss, cfg);
}

TEST(Serialization, RoundTripPreservesScalars)
{
    const auto &s = Shared::get();
    const auto loaded = roundTrip(s.models, s.cfg);
    EXPECT_DOUBLE_EQ(loaded.alpha, s.models.alpha);
    EXPECT_DOUBLE_EQ(loaded.dynamic.trainingVoltage(),
                     s.models.dynamic.trainingVoltage());
    for (std::size_t i = 0; i < sim::kNumPowerEvents; ++i)
        EXPECT_DOUBLE_EQ(loaded.dynamic.weights()[i],
                         s.models.dynamic.weights()[i]);
}

TEST(Serialization, RoundTripPreservesIdlePredictions)
{
    const auto &s = Shared::get();
    const auto loaded = roundTrip(s.models, s.cfg);
    for (double v : {0.888, 1.128, 1.320})
        for (double t : {305.0, 320.0, 340.0})
            EXPECT_DOUBLE_EQ(loaded.idle.predict(v, t),
                             s.models.idle.predict(v, t));
}

TEST(Serialization, RoundTripPreservesPgComponents)
{
    const auto &s = Shared::get();
    const auto loaded = roundTrip(s.models, s.cfg);
    ASSERT_TRUE(loaded.pg.trained());
    EXPECT_EQ(loaded.pg.cuCount(), s.models.pg.cuCount());
    for (std::size_t vf = 0; vf < 5; ++vf) {
        EXPECT_DOUBLE_EQ(loaded.pg.components(vf).p_cu,
                         s.models.pg.components(vf).p_cu);
        EXPECT_DOUBLE_EQ(loaded.pg.components(vf).p_nb,
                         s.models.pg.components(vf).p_nb);
        EXPECT_DOUBLE_EQ(loaded.pg.components(vf).p_base,
                         s.models.pg.components(vf).p_base);
    }
}

TEST(Serialization, RoundTripPreservesChipEstimates)
{
    // End to end: a loaded model must produce bit-identical power
    // estimates on a real interval.
    const auto &s = Shared::get();
    const auto loaded = roundTrip(s.models, s.cfg);

    sim::Chip chip(s.cfg, 5);
    wl::launch(chip, wl::replicate("433.milc", 2), true);
    ppep::trace::Collector col(chip);
    col.collect(2);
    const auto rec = col.collectInterval();

    for (std::size_t vf = 0; vf < 5; ++vf) {
        EXPECT_DOUBLE_EQ(loaded.chip.predictAt(rec, vf).total_w,
                         s.models.chip.predictAt(rec, vf).total_w)
            << "VF index " << vf;
    }
    EXPECT_DOUBLE_EQ(loaded.gg.estimate(rec, s.cfg.vf_table),
                     s.models.gg.estimate(rec, s.cfg.vf_table));
}

TEST(Serialization, FileRoundTrip)
{
    const auto &s = Shared::get();
    const std::string path =
        ::testing::TempDir() + "ppep_models_test.txt";
    saveModels(s.models, path);
    const auto loaded = loadModels(path, s.cfg);
    EXPECT_DOUBLE_EQ(loaded.alpha, s.models.alpha);
    std::remove(path.c_str());
}

TEST(Serialization, CommentsAndBlankLinesTolerated)
{
    const auto &s = Shared::get();
    std::stringstream ss;
    saveModels(s.models, ss);
    std::string text = ss.str();
    // Inject comments/blank lines after the header.
    const auto pos = text.find('\n');
    text.insert(pos + 1, "# a comment\n\n");
    std::stringstream edited(text);
    const auto loaded = loadModels(edited, s.cfg);
    EXPECT_DOUBLE_EQ(loaded.alpha, s.models.alpha);
}

TEST(SerializationDeath, BadMagicRejected)
{
    const auto &s = Shared::get();
    std::stringstream ss("not-a-model-file 1\n");
    EXPECT_DEATH(loadModels(ss, s.cfg), "bad magic");
}

TEST(SerializationDeath, BadVersionRejected)
{
    const auto &s = Shared::get();
    std::stringstream ss("ppep-models 999\n");
    EXPECT_DEATH(loadModels(ss, s.cfg), "version");
}

TEST(SerializationDeath, TruncatedFileRejected)
{
    const auto &s = Shared::get();
    std::stringstream full;
    saveModels(s.models, full);
    const std::string text = full.str();
    std::stringstream truncated(text.substr(0, text.size() / 2));
    // Depending on where the cut lands this dies as "unexpected end of
    // file", a short-line assert, or a count mismatch — any loud death
    // is the contract.
    EXPECT_DEATH(loadModels(truncated, s.cfg), "");
}

TEST(SerializationDeath, WrongKeywordRejected)
{
    const auto &s = Shared::get();
    std::stringstream ss;
    saveModels(s.models, ss);
    std::string text = ss.str();
    const auto pos = text.find("alpha");
    text.replace(pos, 5, "gamma");
    std::stringstream edited(text);
    EXPECT_DEATH(loadModels(edited, s.cfg), "expected 'alpha'");
}

TEST(SerializationDeath, CuCountMismatchRejected)
{
    const auto &s = Shared::get();
    std::stringstream ss;
    saveModels(s.models, ss);
    const auto phenom = sim::phenomIIConfig(); // 6 CUs, models have 4
    EXPECT_DEATH(loadModels(ss, phenom), "CU");
}

TEST(SerializationDeath, SavingUntrainedModelsRejected)
{
    TrainedModels empty;
    std::stringstream ss;
    EXPECT_DEATH(saveModels(empty, ss), "untrained");
}

} // namespace
