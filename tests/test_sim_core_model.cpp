/**
 * @file
 * Unit tests for the interval-analysis core model: the place where the
 * paper's Eq. 4-6 identities and Observations 1/2 must *emerge*.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ppep/sim/core_model.hpp"

namespace {

using namespace ppep::sim;

ChipConfig
quietConfig()
{
    ChipConfig cfg = fx8320Config();
    cfg.rate_jitter_sd = 0.0; // deterministic rates for identity checks
    cfg.event_freq_sens = {}; // perfect Observation 1
    return cfg;
}

Phase
memPhase()
{
    Phase p;
    p.l2req_per_inst = 0.05;
    p.l2miss_per_inst = 0.02;
    p.leading_per_inst = 0.006;
    p.l3_miss_rate = 0.7;
    return p;
}

TEST(CoreModel, CcpiDecomposition)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    Phase p;
    p.mispred_per_inst = 0.005;
    p.resource_stall_cpi = 0.4;
    const auto rates = CoreModel::effectiveRates(cfg, p, 3.5, rng);
    // CCPI = 1/IW + penalty * mispred + resource stalls.
    EXPECT_NEAR(rates.ccpi, 0.25 + 20.0 * 0.005 + 0.4, 1e-12);
    EXPECT_NEAR(rates.obs2_gap, 0.25 + 20.0 * 0.005, 1e-12);
}

TEST(CoreModel, Observation1ExactWithoutSensitivity)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng_a(1), rng_b(1);
    const Phase p = memPhase();
    const auto hi = CoreModel::effectiveRates(cfg, p, 3.5, rng_a);
    const auto lo = CoreModel::effectiveRates(cfg, p, 1.4, rng_b);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(hi.power_events[i], lo.power_events[i], 1e-12)
            << "event E" << i + 1;
}

TEST(CoreModel, Observation1ApproximateWithSensitivity)
{
    ChipConfig cfg = fx8320Config();
    cfg.rate_jitter_sd = 0.0;
    ppep::util::Rng rng_a(1), rng_b(1);
    const Phase p = memPhase();
    const auto hi = CoreModel::effectiveRates(cfg, p, 3.5, rng_a);
    const auto lo = CoreModel::effectiveRates(cfg, p, 1.7, rng_b);
    // E4 (data cache) carries the paper's largest delta, ~5% VF5 vs VF2.
    const double delta_e4 =
        std::fabs(hi.power_events[3] - lo.power_events[3]) /
        hi.power_events[3];
    EXPECT_GT(delta_e4, 0.02);
    EXPECT_LT(delta_e4, 0.09);
    // E1 stays within ~1%.
    const double delta_e1 =
        std::fabs(hi.power_events[0] - lo.power_events[0]) /
        hi.power_events[0];
    EXPECT_LT(delta_e1, 0.015);
}

TEST(CoreModel, McpiScalesWithFrequencyAtFixedLatency)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    const Phase p = memPhase();
    const auto rates = CoreModel::effectiveRates(cfg, p, 3.5, rng);
    const auto hi = CoreModel::execute(cfg, rates, 3.5, 80.0, 0.02, 1e18);
    const auto lo = CoreModel::execute(cfg, rates, 1.4, 80.0, 0.02, 1e18);
    const double mcpi_hi = hi.mcpi;
    const double mcpi_lo = lo.mcpi;
    EXPECT_NEAR(mcpi_hi / mcpi_lo, 3.5 / 1.4, 1e-9);
}

TEST(CoreModel, Observation2GapFrequencyInvariant)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    const Phase p = memPhase();
    const auto rates = CoreModel::effectiveRates(cfg, p, 3.5, rng);
    for (double f : {1.4, 1.7, 2.3, 2.9, 3.5}) {
        const auto act = CoreModel::execute(cfg, rates, f, 80.0, 0.02,
                                            1e18);
        const double cpi = act.cycles / act.instructions;
        const double ds_per_inst =
            act.events[eventIndex(Event::DispatchStall)] /
            act.instructions;
        EXPECT_NEAR(cpi - ds_per_inst, rates.obs2_gap, 1e-9)
            << "f = " << f;
    }
}

TEST(CoreModel, Equation4CycleAccounting)
{
    // unhalted = retiring + stalls + discarded (Eq. 4/5).
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    Phase p = memPhase();
    p.mispred_per_inst = 0.004;
    const auto rates = CoreModel::effectiveRates(cfg, p, 3.5, rng);
    const auto act = CoreModel::execute(cfg, rates, 3.5, 80.0, 0.02, 1e18);
    const double retiring =
        act.events[eventIndex(Event::RetiredInst)] / cfg.issue_width;
    const double stalls =
        act.events[eventIndex(Event::DispatchStall)];
    const double discarded =
        act.events[eventIndex(Event::RetiredMispBranch)] *
        cfg.mispredict_penalty;
    EXPECT_NEAR(act.events[eventIndex(Event::ClocksNotHalted)],
                retiring + stalls + discarded,
                act.cycles * 1e-9);
}

TEST(CoreModel, MabWaitEqualsMemoryCycles)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    const auto rates =
        CoreModel::effectiveRates(cfg, memPhase(), 2.9, rng);
    const auto act = CoreModel::execute(cfg, rates, 2.9, 95.0, 0.02, 1e18);
    EXPECT_NEAR(act.events[eventIndex(Event::MabWaitCycles)],
                act.mcpi * act.instructions, 1e-6);
}

TEST(CoreModel, InstructionsBoundedByJobRemainder)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    const auto rates =
        CoreModel::effectiveRates(cfg, Phase{}, 3.5, rng);
    const auto act = CoreModel::execute(cfg, rates, 3.5, 80.0, 0.02,
                                        1000.0);
    EXPECT_DOUBLE_EQ(act.instructions, 1000.0);
}

TEST(CoreModel, HigherLatencyLowersThroughput)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    const auto rates =
        CoreModel::effectiveRates(cfg, memPhase(), 3.5, rng);
    const double fast = CoreModel::instRate(rates, 3.5, 70.0);
    const double slow = CoreModel::instRate(rates, 3.5, 140.0);
    EXPECT_GT(fast, slow);
}

TEST(CoreModel, CpuBoundInsensitiveToLatency)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    Phase p;
    p.l2req_per_inst = 0.001;
    p.l2miss_per_inst = 0.0;
    p.leading_per_inst = 0.0;
    const auto rates = CoreModel::effectiveRates(cfg, p, 3.5, rng);
    const double fast = CoreModel::instRate(rates, 3.5, 70.0);
    const double slow = CoreModel::instRate(rates, 3.5, 700.0);
    EXPECT_DOUBLE_EQ(fast, slow);
}

TEST(CoreModel, IdleTickIsSilent)
{
    const auto act = CoreModel::idleTick();
    EXPECT_FALSE(act.busy);
    EXPECT_DOUBLE_EQ(act.instructions, 0.0);
    EXPECT_DOUBLE_EQ(act.cycles, 0.0);
    for (double e : act.events)
        EXPECT_DOUBLE_EQ(e, 0.0);
}

// Property sweep: event counts scale linearly with executed instructions
// across VF states and latencies.
struct ExecCase
{
    double f_ghz;
    double lat_ns;
};

class ExecSweep : public ::testing::TestWithParam<ExecCase>
{
};

TEST_P(ExecSweep, EventCountsProportionalToInstructions)
{
    const auto cfg = quietConfig();
    ppep::util::Rng rng(1);
    const auto rates =
        CoreModel::effectiveRates(cfg, memPhase(), GetParam().f_ghz, rng);
    const auto act = CoreModel::execute(cfg, rates, GetParam().f_ghz,
                                        GetParam().lat_ns, 0.02, 1e18);
    ASSERT_GT(act.instructions, 0.0);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(act.events[i] / act.instructions,
                    rates.power_events[i], 1e-9)
            << "event E" << i + 1;
    }
    EXPECT_NEAR(act.l3_accesses / act.instructions, rates.l3_per_inst,
                1e-9);
    EXPECT_NEAR(act.dram_accesses / act.instructions,
                rates.dram_per_inst, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExecSweep,
    ::testing::Values(ExecCase{1.4, 70.0}, ExecCase{1.4, 140.0},
                      ExecCase{2.3, 90.0}, ExecCase{3.5, 70.0},
                      ExecCase{3.5, 200.0}));

} // namespace
