/**
 * @file
 * Unit tests for the HealthMonitor state machine: fault-count and
 * divergence-EWMA demotion, the latching degraded state, hysteresis
 * between the clean and demote thresholds, and re-promotion after a
 * clean streak.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ppep/runtime/health.hpp"

namespace {

using namespace ppep::runtime;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

SampleHealth
cleanInterval()
{
    SampleHealth h;
    h.ticks = 10;
    return h;
}

SampleHealth
faultyInterval(std::size_t events)
{
    SampleHealth h;
    h.ticks = 10;
    h.sensor_rejects = events;
    return h;
}

TEST(HealthMonitor, StartsHealthy)
{
    HealthMonitor mon;
    EXPECT_FALSE(mon.degraded());
    EXPECT_EQ(mon.divergenceEwma(), 0.0);
    EXPECT_EQ(mon.demotions(), 0u);
    EXPECT_EQ(mon.intervalsObserved(), 0u);
}

TEST(HealthMonitor, StaysHealthyOnCleanIntervals)
{
    HealthMonitor mon;
    for (int i = 0; i < 50; ++i)
        mon.observe(cleanInterval(), 60.0, 60.5);
    EXPECT_FALSE(mon.degraded());
    EXPECT_EQ(mon.demotions(), 0u);
    EXPECT_EQ(mon.intervalsObserved(), 50u);
    EXPECT_NEAR(mon.divergenceEwma(), 0.5, 0.01);
}

TEST(HealthMonitor, DemotesOnFaultBurst)
{
    HealthMonitor mon;
    mon.observe(cleanInterval(), 60.0, 60.0);
    EXPECT_FALSE(mon.degraded());
    mon.observe(faultyInterval(mon.policy().demote_fault_events), 60.0,
                60.0);
    EXPECT_TRUE(mon.degraded());
    EXPECT_EQ(mon.demotions(), 1u);
    EXPECT_EQ(mon.cleanStreak(), 0u);
}

TEST(HealthMonitor, FaultsBelowThresholdDoNotDemote)
{
    HealthMonitor mon;
    for (int i = 0; i < 20; ++i)
        mon.observe(faultyInterval(mon.policy().demote_fault_events - 1),
                    60.0, 60.0);
    EXPECT_FALSE(mon.degraded());
    // ...but they are never "clean" either.
    EXPECT_EQ(mon.cleanStreak(), 0u);
}

TEST(HealthMonitor, DemotesWhenDivergenceEwmaCrosses)
{
    HealthMonitor mon;
    const double bad = mon.policy().demote_divergence_w * 3.0;
    std::size_t demoted_at = 0;
    for (std::size_t i = 1; i <= 20 && !mon.degraded(); ++i) {
        mon.observe(cleanInterval(), 60.0, 60.0 + bad);
        demoted_at = i;
    }
    EXPECT_TRUE(mon.degraded());
    // The EWMA needs a few intervals to cross — one glitch is not
    // enough to flip the verdict.
    EXPECT_GT(demoted_at, 1u);
    EXPECT_GT(mon.divergenceEwma(), mon.policy().demote_divergence_w);
}

TEST(HealthMonitor, SingleGlitchDoesNotDemote)
{
    HealthMonitor mon;
    mon.observe(cleanInterval(), 60.0, 100.0); // one wild interval
    EXPECT_FALSE(mon.degraded());
    mon.observe(cleanInterval(), 60.0, 60.0);
    EXPECT_FALSE(mon.degraded());
}

TEST(HealthMonitor, DegradedStateLatchesUntilCleanStreak)
{
    HealthMonitor mon;
    mon.observe(faultyInterval(10), 60.0, 60.0);
    ASSERT_TRUE(mon.degraded());
    const std::size_t need = mon.policy().repromote_clean;
    for (std::size_t i = 1; i < need; ++i) {
        mon.observe(cleanInterval(), kNaN, 60.0);
        EXPECT_TRUE(mon.degraded()) << "after " << i << " clean";
    }
    mon.observe(cleanInterval(), kNaN, 60.0);
    EXPECT_FALSE(mon.degraded());
    EXPECT_EQ(mon.repromotions(), 1u);
    EXPECT_EQ(mon.cleanStreak(), 0u); // consumed by the re-promotion
}

TEST(HealthMonitor, FaultDuringRecoveryResetsTheStreak)
{
    HealthMonitor mon;
    mon.observe(faultyInterval(10), 60.0, 60.0);
    ASSERT_TRUE(mon.degraded());
    const std::size_t need = mon.policy().repromote_clean;
    for (std::size_t i = 1; i < need; ++i)
        mon.observe(cleanInterval(), kNaN, 60.0);
    mon.observe(faultyInterval(1), kNaN, 60.0); // streak broken
    EXPECT_TRUE(mon.degraded());
    for (std::size_t i = 1; i < need; ++i) {
        mon.observe(cleanInterval(), kNaN, 60.0);
        EXPECT_TRUE(mon.degraded());
    }
    mon.observe(cleanInterval(), kNaN, 60.0);
    EXPECT_FALSE(mon.degraded());
}

TEST(HealthMonitor, NanPredictionHoldsTheEwma)
{
    HealthMonitor mon;
    for (int i = 0; i < 10; ++i)
        mon.observe(cleanInterval(), 60.0, 70.0);
    const double held = mon.divergenceEwma();
    ASSERT_GT(held, 0.0);
    // Degraded mode predicts nothing; the EWMA must not decay toward
    // zero on missing data (that would re-promote a blind system).
    for (int i = 0; i < 10; ++i)
        mon.observe(cleanInterval(), kNaN, 70.0);
    EXPECT_EQ(mon.divergenceEwma(), held);
}

TEST(HealthMonitor, HysteresisBlocksRepromotionBetweenThresholds)
{
    HealthPolicy pol;
    pol.ewma_alpha = 1.0; // EWMA == the latest error, for directness
    HealthMonitor mon(pol);
    mon.observe(faultyInterval(10), 60.0, 60.0);
    ASSERT_TRUE(mon.degraded());
    // Error sits between clean (8 W) and demote (15 W): not demotable,
    // but not clean either — the system must stay degraded forever.
    const double mid =
        0.5 * (pol.clean_divergence_w + pol.demote_divergence_w);
    for (int i = 0; i < 30; ++i) {
        mon.observe(cleanInterval(), 60.0, 60.0 + mid);
        EXPECT_TRUE(mon.degraded());
        EXPECT_EQ(mon.cleanStreak(), 0u);
    }
}

TEST(HealthMonitor, CountsMultipleDemotionCycles)
{
    HealthMonitor mon;
    const std::size_t need = mon.policy().repromote_clean;
    for (int cycle = 0; cycle < 3; ++cycle) {
        mon.observe(faultyInterval(10), 60.0, 60.0);
        for (std::size_t i = 0; i < need; ++i)
            mon.observe(cleanInterval(), kNaN, 60.0);
    }
    EXPECT_EQ(mon.demotions(), 3u);
    EXPECT_EQ(mon.repromotions(), 3u);
    EXPECT_FALSE(mon.degraded());
}

// --- exact threshold boundaries ----------------------------------------

TEST(HealthMonitor, DivergenceExactlyAtDemoteThresholdStaysHealthy)
{
    // Demotion is strict >: an EWMA sitting exactly on the line is
    // still (barely) trusted.
    HealthPolicy pol;
    pol.ewma_alpha = 1.0; // EWMA == the latest error
    HealthMonitor mon(pol);
    for (int i = 0; i < 10; ++i) {
        mon.observe(cleanInterval(), 60.0,
                    60.0 + pol.demote_divergence_w);
        EXPECT_FALSE(mon.degraded());
    }
    // Nudge the *measured* value (one ulp at ~75 W survives the
    // subtraction; one ulp at 15 W would be absorbed by 60.0 + x).
    mon.observe(cleanInterval(), 60.0,
                std::nextafter(60.0 + pol.demote_divergence_w, 1e300));
    EXPECT_TRUE(mon.degraded());
}

TEST(HealthMonitor, DivergenceExactlyAtCleanThresholdCountsClean)
{
    // Cleanliness is inclusive <=: exactly clean_divergence_w earns
    // streak credit and eventually re-promotes.
    HealthPolicy pol;
    pol.ewma_alpha = 1.0;
    HealthMonitor mon(pol);
    mon.observe(faultyInterval(10), 60.0, 60.0);
    ASSERT_TRUE(mon.degraded());
    for (std::size_t i = 0; i < pol.repromote_clean; ++i)
        mon.observe(cleanInterval(), 60.0,
                    60.0 + pol.clean_divergence_w);
    EXPECT_FALSE(mon.degraded());
    EXPECT_EQ(mon.repromotions(), 1u);
}

TEST(HealthMonitor, FaultEventsExactlyAtThresholdDemote)
{
    HealthMonitor below;
    below.observe(faultyInterval(below.policy().demote_fault_events - 1),
                  60.0, 60.0);
    EXPECT_FALSE(below.degraded());

    HealthMonitor at;
    at.observe(faultyInterval(at.policy().demote_fault_events), 60.0,
               60.0);
    EXPECT_TRUE(at.degraded());
}

// --- model swaps --------------------------------------------------------

TEST(HealthMonitor, ModelSwapResetsEwmaAndStreak)
{
    HealthMonitor mon;
    for (int i = 0; i < 20; ++i)
        mon.observe(cleanInterval(), 60.0, 70.0);
    ASSERT_GT(mon.divergenceEwma(), 0.0);
    mon.noteModelSwap();
    EXPECT_EQ(mon.divergenceEwma(), 0.0);
    EXPECT_EQ(mon.cleanStreak(), 0u);
    EXPECT_EQ(mon.modelSwaps(), 1u);
}

TEST(HealthMonitor, ModelSwapDoesNotLiftTheDegradedLatch)
{
    // A swap mid-recovery erases the streak earned under the retired
    // model; re-promotion needs repromote_clean fresh intervals under
    // the new one.
    HealthMonitor mon;
    mon.observe(faultyInterval(10), 60.0, 60.0);
    ASSERT_TRUE(mon.degraded());
    const std::size_t need = mon.policy().repromote_clean;
    for (std::size_t i = 1; i < need; ++i)
        mon.observe(cleanInterval(), kNaN, 60.0);
    mon.noteModelSwap();
    EXPECT_TRUE(mon.degraded());
    for (std::size_t i = 1; i < need; ++i) {
        mon.observe(cleanInterval(), kNaN, 60.0);
        EXPECT_TRUE(mon.degraded()) << "after " << i << " clean";
    }
    mon.observe(cleanInterval(), kNaN, 60.0);
    EXPECT_FALSE(mon.degraded());
    EXPECT_EQ(mon.repromotions(), 1u);
}

TEST(HealthMonitor, SwapWhileHealthyKeepsGoverning)
{
    // The re-promotion hysteresis path of a swap on a healthy session:
    // an EWMA just under the demote line restarts from zero, so the
    // session does not demote on post-swap residue.
    HealthPolicy pol;
    pol.ewma_alpha = 1.0;
    HealthMonitor mon(pol);
    mon.observe(cleanInterval(), 60.0,
                60.0 + pol.demote_divergence_w); // at, not over
    ASSERT_FALSE(mon.degraded());
    mon.noteModelSwap();
    EXPECT_EQ(mon.divergenceEwma(), 0.0);
    mon.observe(cleanInterval(), 60.0, 60.5);
    EXPECT_FALSE(mon.degraded());
    EXPECT_DOUBLE_EQ(mon.divergenceEwma(), 0.5);
}

TEST(HealthMonitorDeath, DegeneratePoliciesAreFatal)
{
    HealthPolicy alpha;
    alpha.ewma_alpha = 0.0;
    EXPECT_DEATH(HealthMonitor{alpha}, "ewma_alpha");
    HealthPolicy swapped;
    swapped.clean_divergence_w = swapped.demote_divergence_w + 1.0;
    EXPECT_DEATH(HealthMonitor{swapped}, "clean threshold");
    HealthPolicy zero;
    zero.repromote_clean = 0;
    EXPECT_DEATH(HealthMonitor{zero}, "clean interval");
}

} // namespace
