/**
 * @file
 * ChipBatch bit-identity tests: the SoA SIMD stepping kernel must
 * reproduce the scalar Chip::stepInto() stream bit for bit — per tick,
 * per lane — for homogeneous, heterogeneous, power-gated and
 * fault-injected chips, and the fleet's batched drive mode must emit
 * the same telemetry digests as the per-session scalar path at any
 * thread count.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "ppep/runtime/fleet.hpp"
#include "ppep/sim/chip.hpp"
#include "ppep/sim/chip_batch.hpp"
#include "ppep/sim/chip_config.hpp"
#include "ppep/sim/fault.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
using runtime::Fleet;
using runtime::FleetSessionSpec;
using runtime::FleetSpec;

/** Exact bit-pattern equality — injected sensor faults are NaN, and a
 *  NaN reading must survive the batch bit-identically too. */
void
expectBitsEqual(double batched, double scalar)
{
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batched),
              std::bit_cast<std::uint64_t>(scalar))
        << batched << " vs " << scalar;
}

/** Bitwise equality of one tick across the batched and scalar paths. */
void
expectTickEqual(const sim::TickResult &batched,
                const sim::TickResult &scalar)
{
    expectBitsEqual(batched.sensor_power_w, scalar.sensor_power_w);
    expectBitsEqual(batched.diode_temp_k, scalar.diode_temp_k);

    const sim::TickTruth &b = batched.truth;
    const sim::TickTruth &s = scalar.truth;
    EXPECT_EQ(b.power.total, s.power.total);
    EXPECT_EQ(b.power.base, s.power.base);
    EXPECT_EQ(b.power.housekeeping, s.power.housekeeping);
    EXPECT_EQ(b.power.nb_static, s.power.nb_static);
    EXPECT_EQ(b.power.nb_dynamic, s.power.nb_dynamic);
    EXPECT_EQ(b.power.cu_idle, s.power.cu_idle);
    EXPECT_EQ(b.power.core_dynamic, s.power.core_dynamic);
    EXPECT_EQ(b.core_events, s.core_events);
    EXPECT_EQ(b.cu_gated, s.cu_gated);
    EXPECT_EQ(b.nb_gated, s.nb_gated);
    EXPECT_EQ(b.nb_utilization, s.nb_utilization);
    EXPECT_EQ(b.temperature_k, s.temperature_k);

    ASSERT_EQ(b.activity.size(), s.activity.size());
    for (std::size_t c = 0; c < s.activity.size(); ++c) {
        EXPECT_EQ(b.activity[c].busy, s.activity[c].busy) << "core " << c;
        EXPECT_EQ(b.activity[c].instructions, s.activity[c].instructions)
            << "core " << c;
        EXPECT_EQ(b.activity[c].cycles, s.activity[c].cycles)
            << "core " << c;
        EXPECT_EQ(b.activity[c].events, s.activity[c].events)
            << "core " << c;
        EXPECT_EQ(b.activity[c].l3_accesses, s.activity[c].l3_accesses)
            << "core " << c;
        EXPECT_EQ(b.activity[c].dram_accesses, s.activity[c].dram_accesses)
            << "core " << c;
        EXPECT_EQ(b.activity[c].cpi, s.activity[c].cpi) << "core " << c;
        EXPECT_EQ(b.activity[c].mcpi, s.activity[c].mcpi) << "core " << c;
    }
}

TEST(ChipBatch, LaneIsBitIdenticalToScalarStep)
{
    const sim::ChipConfig cfg = sim::fx8320Config();
    sim::Chip scalar(cfg, 11);
    sim::Chip lane(cfg, 11);
    for (sim::Chip *c : {&scalar, &lane}) {
        c->setPowerGatingEnabled(true);
        workloads::launch(*c, workloads::replicate("433.milc", 4), true);
    }

    sim::ChipBatch batch;
    ASSERT_EQ(batch.attach(lane), 0u);
    EXPECT_EQ(batch.laneCount(), 1u);
    EXPECT_EQ(batch.coreLaneCount(), cfg.coreCount());
    EXPECT_TRUE(batch.laneActive(0));

    sim::TickResult ref;
    for (std::size_t t = 0; t < 60; ++t) {
        SCOPED_TRACE("tick " + std::to_string(t));
        // Sweep the whole VF table (including boost indices) so the
        // pricing pass sees every operating point.
        const std::size_t vf = (t / 8) % scalar.stateCount();
        scalar.setAllVf(vf);
        lane.setAllVf(vf);
        scalar.stepInto(ref);
        batch.step();
        expectTickEqual(batch.result(0), ref);
    }
    EXPECT_EQ(lane.timeS(), scalar.timeS());
}

TEST(ChipBatch, HeterogeneousAndFaultyLanesShareThePass)
{
    // Four lanes over three platforms; lane 0 additionally runs with a
    // fault plan installed, so injected sensor/diode faults must stay
    // bit-identical through the batch too.
    struct Setup
    {
        sim::ChipConfig cfg;
        const char *program;
        std::size_t jobs;
        bool pg;
        bool faulty;
        std::uint64_t seed;
    };
    const Setup setups[] = {
        {sim::fx8320Config(), "433.milc", 6, true, true, 21},
        {sim::phenomIIConfig(), "EP", 4, false, false, 22},
        {sim::fx8320NbDvfsConfig(), "CG", 8, false, false, 23},
        {sim::fx8320Config(), "458.sjeng", 2, true, false, 24},
    };
    const sim::FaultPlan plan = sim::FaultPlan::parse(
        "msr=0.3,sensor_drop=0.2,diode_spike=0.1,jitter=0.3");

    std::vector<std::unique_ptr<sim::Chip>> scalars;
    std::vector<std::unique_ptr<sim::Chip>> lanes;
    sim::ChipBatch batch;
    std::size_t total_cores = 0;
    for (const Setup &s : setups) {
        scalars.push_back(std::make_unique<sim::Chip>(s.cfg, s.seed));
        lanes.push_back(std::make_unique<sim::Chip>(s.cfg, s.seed));
        for (sim::Chip *c : {scalars.back().get(), lanes.back().get()}) {
            c->setPowerGatingEnabled(s.pg);
            workloads::launch(*c, workloads::replicate(s.program, s.jobs),
                              true);
            if (s.faulty)
                c->setFaultPlan(plan, 7);
        }
        const std::size_t lane = batch.attach(*lanes.back());
        EXPECT_EQ(lane, lanes.size() - 1);
        total_cores += s.cfg.coreCount();
    }
    EXPECT_EQ(batch.laneCount(), 4u);
    EXPECT_EQ(batch.coreLaneCount(), total_cores);

    sim::TickResult ref;
    for (std::size_t t = 0; t < 50; ++t) {
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            const std::size_t vf =
                (t / 10 + i) % scalars[i]->stateCount();
            scalars[i]->setAllVf(vf);
            lanes[i]->setAllVf(vf);
        }
        batch.step();
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            SCOPED_TRACE("tick " + std::to_string(t) + " lane " +
                         std::to_string(i));
            scalars[i]->stepInto(ref);
            expectTickEqual(batch.result(i), ref);
        }
    }
}

TEST(ChipBatch, InactiveLanesAreLeftUntouched)
{
    // The fleet's lockstep drive deactivates a lane whose jittered
    // interval ran out of ticks before its peers; the lane's chip must
    // not advance, and reactivation must resume bit-identically.
    const sim::ChipConfig cfg = sim::fx8320Config();
    sim::Chip a_scalar(cfg, 5);
    sim::Chip b_scalar(cfg, 6);
    sim::Chip a_lane(cfg, 5);
    sim::Chip b_lane(cfg, 6);
    for (sim::Chip *c : {&a_scalar, &a_lane})
        workloads::launch(*c, workloads::replicate("EP", 4), true);
    for (sim::Chip *c : {&b_scalar, &b_lane})
        workloads::launch(*c, workloads::replicate("CG", 4), true);

    sim::ChipBatch batch;
    ASSERT_EQ(batch.attach(a_lane), 0u);
    ASSERT_EQ(batch.attach(b_lane), 1u);

    sim::TickResult ref;
    for (std::size_t t = 0; t < 25; ++t) {
        SCOPED_TRACE("tick " + std::to_string(t));
        const bool b_active = t < 10 || t >= 15;
        batch.setActive(1, b_active);
        EXPECT_EQ(batch.laneActive(1), b_active);
        batch.step();
        a_scalar.stepInto(ref);
        expectTickEqual(batch.result(0), ref);
        if (b_active) {
            b_scalar.stepInto(ref);
            expectTickEqual(batch.result(1), ref);
        }
        EXPECT_EQ(b_lane.timeS(), b_scalar.timeS());
    }
    EXPECT_EQ(a_lane.timeS(), a_scalar.timeS());
    EXPECT_GT(a_lane.timeS(), b_lane.timeS());
}

// --- fleet batched drive mode -------------------------------------------

std::vector<const workloads::Combination *>
smallTrainingSet(std::size_t n = 8)
{
    std::vector<const workloads::Combination *> out;
    for (const auto &c : workloads::allCombinations())
        if (c.instances.size() == 1 && out.size() < n)
            out.push_back(&c);
    return out;
}

/** One cache dir per test process (see test_runtime_fleet.cpp). */
const std::string &
cacheDir()
{
    static const std::string dir = [] {
        const std::string d = ::testing::TempDir() +
                              "ppep_batch_cache_" +
                              std::to_string(::getpid());
        std::filesystem::remove_all(d);
        return d;
    }();
    return dir;
}

FleetSpec
baseSpec(std::size_t n_sessions)
{
    static const std::vector<std::string> programs = {"EP", "CG",
                                                      "458.sjeng"};
    FleetSpec spec;
    spec.cfg = sim::fx8320Config();
    spec.training_seed = 91;
    spec.training_combos = smallTrainingSet();
    spec.store.emplace(cacheDir());
    spec.warmup = 1;
    spec.intervals = 6;
    for (std::size_t i = 0; i < n_sessions; ++i) {
        FleetSessionSpec ss;
        ss.seed = 7 + i;
        ss.pg = (i % 2) == 0;
        ss.one_per_cu = {programs[i % programs.size()]};
        spec.sessions.push_back(std::move(ss));
    }
    return spec;
}

/** 5 sessions over 3 distinct platforms, 2 tenants on the first. */
FleetSpec
heteroSpec()
{
    FleetSpec spec = baseSpec(5);
    spec.sessions[2].cfg = sim::phenomIIConfig();
    spec.sessions[3].cfg = sim::phenomIIConfig();
    spec.sessions[4].cfg = sim::fx8320NbDvfsConfig();
    spec.sessions[2].pg = false;
    spec.sessions[3].pg = false;
    spec.sessions[0].one_per_cu.clear();
    spec.sessions[0].tenants = {
        {"alpha", {0, 1, 2, 3}, {{0, "EP", true}}},
        {"beta", {4, 5, 6, 7}, {{4, "CG", true}}},
    };
    return spec;
}

TEST(FleetBatched, DigestsMatchThreadedPathBitForBit)
{
    Fleet scalar_fleet(baseSpec(5));
    const auto serial = scalar_fleet.run(1);
    ASSERT_EQ(serial.failed, 0u);
    ASSERT_EQ(serial.completed, 5u);
    const auto threaded = scalar_fleet.run(4);
    ASSERT_EQ(threaded.failed, 0u);

    auto bspec = baseSpec(5);
    bspec.batched = true;
    Fleet batched_fleet(std::move(bspec));
    const auto batched = batched_fleet.run(4);
    ASSERT_EQ(batched.failed, 0u);
    ASSERT_EQ(batched.completed, 5u);

    // Non-vacuous: the sessions differ from each other.
    for (std::size_t i = 1; i < serial.sessions.size(); ++i)
        EXPECT_NE(serial.sessions[i].telemetry_digest,
                  serial.sessions[0].telemetry_digest);

    for (std::size_t i = 0; i < serial.sessions.size(); ++i) {
        EXPECT_EQ(threaded.sessions[i].telemetry_digest,
                  serial.sessions[i].telemetry_digest)
            << "session " << i;
        EXPECT_EQ(batched.sessions[i].telemetry_digest,
                  serial.sessions[i].telemetry_digest)
            << "session " << i;
        EXPECT_EQ(batched.sessions[i].intervals, 6u);
        EXPECT_EQ(batched.sessions[i].name, serial.sessions[i].name);
    }
}

TEST(FleetBatched, HeterogeneousAndFaultyDigestsMatchScalarPath)
{
    // A mixed fleet with tenants on one session and a jittering fault
    // plan on another: the fault jitter shortens intervals, forcing the
    // lockstep drive through its lane-deactivation path.
    auto spec = heteroSpec();
    spec.sessions[1].faults = sim::FaultPlan::parse(
        "msr=0.3,sensor_drop=0.2,diode_spike=0.1,jitter=0.3");

    Fleet scalar_fleet(spec);
    const auto scalar = scalar_fleet.run(2);
    ASSERT_EQ(scalar.failed, 0u);
    ASSERT_EQ(scalar.completed, 5u);

    spec.batched = true;
    Fleet batched_fleet(std::move(spec));
    const auto batched = batched_fleet.run(1);
    ASSERT_EQ(batched.failed, 0u);
    ASSERT_EQ(batched.completed, 5u);

    for (std::size_t i = 0; i < scalar.sessions.size(); ++i) {
        EXPECT_EQ(batched.sessions[i].telemetry_digest,
                  scalar.sessions[i].telemetry_digest)
            << "session " << i;
        EXPECT_EQ(batched.sessions[i].intervals,
                  scalar.sessions[i].intervals)
            << "session " << i;
    }
}

} // namespace
