/**
 * @file
 * Unit tests for the dense matrix and its SPD solver.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ppep/math/matrix.hpp"

namespace {

using ppep::math::Matrix;

TEST(Matrix, ZeroInitialised)
{
    Matrix m(2, 3);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(m(r, c), 0.0);
}

TEST(Matrix, FromRowsAndAt)
{
    const auto m = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, IdentityMultiplyIsNoop)
{
    const auto m = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    const auto i = Matrix::identity(2);
    const auto p = m.multiply(i);
    EXPECT_DOUBLE_EQ(p(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(p(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(p(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(p(1, 1), 4.0);
}

TEST(Matrix, MultiplyKnownProduct)
{
    const auto a = Matrix::fromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const auto b =
        Matrix::fromRows({{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}});
    const auto p = a.multiply(b);
    EXPECT_EQ(p.rows(), 2u);
    EXPECT_EQ(p.cols(), 2u);
    EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(Matrix, MatrixVectorProduct)
{
    const auto a = Matrix::fromRows({{1.0, 2.0}, {3.0, 4.0}});
    const auto v = a.multiply(std::vector<double>{1.0, 1.0});
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(Matrix, TransposeRoundTrip)
{
    const auto a = Matrix::fromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const auto t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    const auto tt = t.transposed();
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
}

TEST(Matrix, SolveSpdKnownSystem)
{
    // A = [[4,1],[1,3]], b = [1,2] -> x = [1/11, 7/11].
    const auto a = Matrix::fromRows({{4.0, 1.0}, {1.0, 3.0}});
    const auto x = a.solveSpd({1.0, 2.0});
    EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
    EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(Matrix, SolveSpdIdentity)
{
    const auto i = Matrix::identity(4);
    const std::vector<double> b{1.0, -2.0, 3.0, -4.0};
    const auto x = i.solveSpd(b);
    for (std::size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(x[k], b[k], 1e-14);
}

TEST(Matrix, SolveSpdResidualSmall)
{
    // Build an SPD matrix as M^T M + I and check A x == b.
    const auto m = Matrix::fromRows(
        {{1.0, 2.0, 0.5}, {0.0, 1.5, 2.0}, {3.0, 0.1, 1.0}});
    auto a = m.transposed().multiply(m);
    for (std::size_t i = 0; i < 3; ++i)
        a(i, i) += 1.0;
    const std::vector<double> b{1.0, 2.0, 3.0};
    const auto x = a.solveSpd(b);
    const auto ax = a.multiply(x);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(ax[i], b[i], 1e-10);
}

TEST(Matrix, SolveSpdNearSingularJitters)
{
    // Rank-deficient Gram matrix: columns are collinear. The solver must
    // not crash; the jittered solution still satisfies A x ~= b within
    // the column space.
    const auto m =
        Matrix::fromRows({{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
    const auto a = m.transposed().multiply(m);
    const std::vector<double> b = {14.0, 28.0};
    const auto x = a.solveSpd(b);
    const auto ax = a.multiply(x);
    EXPECT_NEAR(ax[0], b[0], 1e-3);
    EXPECT_NEAR(ax[1], b[1], 1e-3);
}

TEST(MatrixQr, ExactlyDeterminedSystem)
{
    const auto a = Matrix::fromRows({{2.0, 1.0}, {1.0, 3.0}});
    const auto x = a.solveLeastSquaresQr({5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(MatrixQr, OverdeterminedMatchesNormalEquations)
{
    const auto a = Matrix::fromRows(
        {{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}});
    const std::vector<double> b{6.0, 5.0, 7.0, 10.0};
    const auto qr = a.solveLeastSquaresQr(b);
    const auto at = a.transposed();
    const auto ne = at.multiply(a).solveSpd(at.multiply(b));
    EXPECT_NEAR(qr[0], ne[0], 1e-9);
    EXPECT_NEAR(qr[1], ne[1], 1e-9);
    // Known regression of this classic data: intercept 3.5, slope 1.4.
    EXPECT_NEAR(qr[0], 3.5, 1e-9);
    EXPECT_NEAR(qr[1], 1.4, 1e-9);
}

TEST(MatrixQr, HandlesIllConditionedDesign)
{
    // Two nearly collinear columns: QR must still recover the
    // generating coefficients to good accuracy.
    Matrix a(200, 2);
    std::vector<double> b(200);
    for (std::size_t i = 0; i < 200; ++i) {
        const double t = static_cast<double>(i) / 200.0;
        a(i, 0) = t;
        a(i, 1) = t + 1e-7 * static_cast<double>(i % 3);
        b[i] = 2.0 * a(i, 0) + 3.0 * a(i, 1);
    }
    const auto x = a.solveLeastSquaresQr(b);
    const auto residual = a.multiply(x);
    for (std::size_t i = 0; i < 200; ++i)
        EXPECT_NEAR(residual[i], b[i], 1e-8);
}

TEST(MatrixQrDeath, RankDeficientRejected)
{
    const auto a =
        Matrix::fromRows({{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
    EXPECT_DEATH(a.solveLeastSquaresQr({1.0, 2.0, 3.0}),
                 "rank-deficient|singular");
}

TEST(MatrixQrDeath, UnderdeterminedRejected)
{
    const auto a = Matrix::fromRows({{1.0, 2.0, 3.0}});
    EXPECT_DEATH(a.solveLeastSquaresQr({1.0}), "rows >= cols");
}

// Property sweep: random SPD systems of several sizes must solve with a
// tiny residual.
class SpdSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SpdSweep, ResidualTiny)
{
    const int n = GetParam();
    Matrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
    // Deterministic pseudo-random entries.
    unsigned state = 12345u + static_cast<unsigned>(n);
    auto next = [&state]() {
        state = state * 1664525u + 1013904223u;
        return static_cast<double>(state % 1000) / 500.0 - 1.0;
    };
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(r, c) = next();
    auto a = m.transposed().multiply(m);
    for (std::size_t i = 0; i < a.rows(); ++i)
        a(i, i) += static_cast<double>(n);
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto &v : b)
        v = next();
    const auto x = a.solveSpd(b);
    const auto ax = a.multiply(x);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(ax[i], b[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSweep,
                         ::testing::Values(1, 2, 3, 5, 9, 12));

} // namespace
