/**
 * @file
 * Tests for the thermal-parameter estimator and the proactive thermal
 * cap governor (extensions), closed-loop against the simulator.
 */

#include <gtest/gtest.h>

#include "ppep/governor/thermal_cap.hpp"
#include "ppep/model/thermal_estimator.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep;
namespace model = ppep::model;

const model::ThermalEstimate &
fitted()
{
    static const model::ThermalEstimate est = [] {
        model::Trainer trainer(sim::fx8320Config(), 17);
        return model::ThermalEstimator::estimate(trainer);
    }();
    return est;
}

TEST(ThermalEstimator, RecoversGroundTruthParameters)
{
    const auto cfg = sim::fx8320Config();
    const auto &est = fitted();
    EXPECT_NEAR(est.ambient_k, cfg.thermal.ambient_k, 1.5);
    EXPECT_NEAR(est.resistance_k_per_w / cfg.thermal.resistance_k_per_w,
                1.0, 0.10);
    // The cooling tail is not a pure exponential (idle power falls
    // with temperature, dragging the asymptote down), so the fitted
    // time constant carries a ~10% bias.
    EXPECT_NEAR(est.time_constant_s / cfg.thermal.time_constant_s, 1.0,
                0.15);
}

TEST(ThermalEstimator, SteadyStatePredictionMatchesSimulator)
{
    const auto cfg = sim::fx8320Config();
    const auto &est = fitted();
    // Run a moderate load to thermal equilibrium and compare.
    sim::Chip chip(cfg, 18);
    for (std::size_t c = 0; c < 4; ++c)
        chip.setJob(c, workloads::Suite::byName("LU").makeLoopingJob());
    chip.run(200 * 10); // 40 s >> tau? (tau 45 s) — keep going
    chip.run(400 * 10); // total 120 s ~ 2.7 tau
    double power = 0.0;
    const int n = 20;
    for (int i = 0; i < n; ++i)
        power += chip.step().truth.power.total;
    power /= n;
    EXPECT_NEAR(est.steadyState(power), chip.temperatureK(), 3.0);
}

TEST(ThermalEstimator, PowerBudgetInvertsSteadyState)
{
    const auto &est = fitted();
    const double cap = 330.0;
    const double budget = est.powerBudgetFor(cap);
    EXPECT_NEAR(est.steadyState(budget), cap, 1e-9);
}

TEST(ThermalEstimatorDeath, TooShortTraceRejected)
{
    model::CoolingTrace tiny;
    tiny.cool_start = 5;
    tiny.power_curve_w.assign(10, 30.0);
    tiny.temp_curve_k.assign(10, 320.0);
    EXPECT_DEATH(model::ThermalEstimator::fit(tiny, 0.2),
                 "too short");
}

struct GovernorFixture
{
    sim::ChipConfig cfg = sim::fx8320Config();
    model::TrainedModels models;

    GovernorFixture()
    {
        model::Trainer trainer(cfg, 19);
        std::vector<const workloads::Combination *> training;
        for (const auto &c : workloads::allCombinations())
            if (c.instances.size() == 1 && training.size() < 12)
                training.push_back(&c);
        models = trainer.trainAll(training);
    }

    static const GovernorFixture &
    get()
    {
        static const GovernorFixture f;
        return f;
    }
};

TEST(ThermalCapGovernor, HoldsTemperatureUnderCap)
{
    // Full 8-core load would settle near 340 K unmanaged; a 328 K cap
    // must be honoured proactively (diode never crosses cap + slack).
    const auto &f = GovernorFixture::get();
    const model::Ppep ppep(f.cfg, f.models.chip, f.models.pg);
    const double cap = 328.0;
    governor::ThermalCapGovernor gov(f.cfg, ppep, fitted(), cap, 1.0);

    sim::Chip chip(f.cfg, 20);
    for (std::size_t c = 0; c < 8; ++c)
        chip.setJob(c,
                    workloads::Suite::byName("EP").makeLoopingJob());
    governor::GovernorLoop loop(chip, gov);
    // 150 intervals = 30 s; with proactive capping the trajectory
    // asymptotes below the cap instead of overshooting.
    const auto steps =
        loop.run(150, governor::CapSchedule::unlimited());
    for (const auto &s : steps)
        EXPECT_LE(s.rec.diode_temp_k, cap + 1.0);
}

TEST(ThermalCapGovernor, UnmanagedLoadWouldExceedCap)
{
    // Sanity for the test above: the same load without management runs
    // hotter than the cap.
    const auto &f = GovernorFixture::get();
    sim::Chip chip(f.cfg, 20);
    for (std::size_t c = 0; c < 8; ++c)
        chip.setJob(c,
                    workloads::Suite::byName("EP").makeLoopingJob());
    chip.run(150 * 10);
    EXPECT_GT(chip.temperatureK(), 329.0);
}

TEST(ThermalCapGovernor, GenerousCapRunsFlatOut)
{
    const auto &f = GovernorFixture::get();
    const model::Ppep ppep(f.cfg, f.models.chip, f.models.pg);
    governor::ThermalCapGovernor gov(f.cfg, ppep, fitted(), 380.0);

    sim::Chip chip(f.cfg, 21);
    chip.setJob(0, workloads::Suite::byName("EP").makeLoopingJob());
    governor::GovernorLoop loop(chip, gov);
    const auto steps =
        loop.run(5, governor::CapSchedule::unlimited());
    EXPECT_EQ(steps.back().cu_vf[0], f.cfg.vf_table.top());
}

TEST(ThermalCapGovernor, RespectsTighterPowerCap)
{
    // An explicit power cap below the thermal budget wins.
    const auto &f = GovernorFixture::get();
    const model::Ppep ppep(f.cfg, f.models.chip, f.models.pg);
    governor::ThermalCapGovernor gov(f.cfg, ppep, fitted(), 380.0);

    sim::Chip chip(f.cfg, 22);
    for (std::size_t c = 0; c < 8; ++c)
        chip.setJob(c,
                    workloads::Suite::byName("EP").makeLoopingJob());
    governor::GovernorLoop loop(chip, gov);
    const auto steps = loop.run(10, governor::CapSchedule(45.0));
    for (std::size_t i = 2; i < steps.size(); ++i)
        EXPECT_LE(steps[i].rec.sensor_power_w, 45.0 * 1.06);
}

TEST(ThermalCapGovernorDeath, CapBelowAmbientRejected)
{
    const auto &f = GovernorFixture::get();
    const model::Ppep ppep(f.cfg, f.models.chip, f.models.pg);
    EXPECT_DEATH(
        governor::ThermalCapGovernor(f.cfg, ppep, fitted(), 290.0),
        "below ambient");
}

} // namespace
