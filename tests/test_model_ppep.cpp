/**
 * @file
 * Integration tests for the assembled PPEP framework (Fig. 5 pipeline).
 */

#include <gtest/gtest.h>

#include "ppep/model/ppep.hpp"
#include "ppep/model/trainer.hpp"
#include "ppep/trace/collector.hpp"
#include "ppep/util/stats.hpp"
#include "ppep/workloads/suite.hpp"

namespace {

using namespace ppep::model;
namespace sim = ppep::sim;
namespace wl = ppep::workloads;

/** Train once for the whole file (a few hundred ms). */
struct SharedModels
{
    sim::ChipConfig cfg = sim::fx8320Config();
    TrainedModels models;

    SharedModels()
    {
        Trainer trainer(cfg, 21);
        std::vector<const wl::Combination *> training;
        for (const auto &c : wl::allCombinations()) {
            if (c.instances.size() == 1 && training.size() < 16)
                training.push_back(&c);
        }
        models = trainer.trainAll(training);
    }

    static const SharedModels &
    get()
    {
        static const SharedModels s;
        return s;
    }
};

ppep::trace::IntervalRecord
measure(const std::string &program, std::size_t copies, std::size_t vf,
        bool pg = false)
{
    const auto &s = SharedModels::get();
    sim::Chip chip(s.cfg, 77);
    chip.setAllVf(vf);
    if (pg)
        chip.setPowerGatingEnabled(true);
    wl::launch(chip, wl::replicate(program, copies), true);
    ppep::trace::Collector col(chip);
    col.collect(3);
    return col.collectInterval();
}

TEST(Ppep, ExploreCoversAllVfStates)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto preds = ppep.explore(measure("433.milc", 1, 4));
    ASSERT_EQ(preds.size(), 5u);
    for (std::size_t i = 0; i < preds.size(); ++i)
        EXPECT_EQ(preds[i].vf_index, i);
}

TEST(Ppep, PowerMonotoneInVf)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto preds = ppep.explore(measure("458.sjeng", 4, 4));
    for (std::size_t i = 1; i < preds.size(); ++i)
        EXPECT_GT(preds[i].chip_power_w, preds[i - 1].chip_power_w);
}

TEST(Ppep, SelfPredictionMatchesSensor)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto rec = measure("462.libquantum", 2, 4);
    const auto pred = ppep.predictVf(rec, 4);
    EXPECT_NEAR(pred.chip_power_w / rec.sensor_power_w, 1.0, 0.10);
}

TEST(Ppep, CrossVfPredictionMatchesActualRun)
{
    // Predict VF2 power from a VF5 measurement, then actually run at
    // VF2 and compare — the paper's core claim (avg error 4.2%).
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    for (const char *prog : {"433.milc", "458.sjeng", "canneal"}) {
        const auto pred = ppep.predictVf(measure(prog, 2, 4), 1);
        const auto actual = measure(prog, 2, 1);
        EXPECT_NEAR(pred.chip_power_w / actual.sensor_power_w, 1.0,
                    0.15)
            << prog;
    }
}

TEST(Ppep, MemoryBoundThroughputSaturates)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto preds = ppep.explore(measure("429.mcf", 1, 4));
    const double speedup =
        preds[4].total_ips / preds[0].total_ips;
    EXPECT_LT(speedup, 1.8); // far below the 2.5x clock ratio
    const auto cpu = ppep.explore(measure("456.hmmer", 1, 4));
    EXPECT_GT(cpu[4].total_ips / cpu[0].total_ips, 2.2);
}

TEST(Ppep, IdleCoresPredictIdle)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto rec = measure("456.hmmer", 1, 4);
    const auto pred = ppep.predictVf(rec, 2);
    std::size_t busy = 0;
    for (const auto &core : pred.cores)
        busy += core.busy;
    EXPECT_EQ(busy, 1u);
}

TEST(Ppep, EnergyMetricsPopulated)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto preds = ppep.explore(measure("FT", 4, 4));
    for (const auto &p : preds) {
        EXPECT_GT(p.energy_per_inst, 0.0);
        EXPECT_GT(p.edp_per_inst, 0.0);
        EXPECT_NEAR(p.edp_per_inst,
                    p.energy_per_inst / p.total_ips, 1e-18);
    }
}

TEST(Ppep, AssignmentPredictionMatchesUniformExplore)
{
    // A uniform per-CU assignment under PG must order the same way the
    // global exploration does.
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto rec = measure("433.milc", 4, 4, /*pg=*/true);
    const auto lo = ppep.predictAssignment(
        rec, std::vector<std::size_t>(4, 0), true);
    const auto hi = ppep.predictAssignment(
        rec, std::vector<std::size_t>(4, 4), true);
    EXPECT_GT(hi.chip_power_w, lo.chip_power_w);
    EXPECT_GT(hi.total_ips, lo.total_ips);
}

TEST(Ppep, AssignmentIdleUsesGatedDecomposition)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto rec = measure("456.hmmer", 1, 4, /*pg=*/true);
    const auto gated = ppep.predictAssignment(
        rec, std::vector<std::size_t>(4, 4), true);
    const auto open = ppep.predictAssignment(
        rec, std::vector<std::size_t>(4, 4), false);
    // With one busy CU, gating the other three must save power.
    EXPECT_LT(gated.idle_w, open.idle_w - 3.0);
}

TEST(Ppep, MixedAssignmentBetweenUniformExtremes)
{
    const auto &s = SharedModels::get();
    Ppep ppep(s.cfg, s.models.chip, s.models.pg);
    const auto rec = measure("LU", 8, 4, /*pg=*/true);
    const auto lo = ppep.predictAssignment(
        rec, std::vector<std::size_t>(4, 0), true);
    const auto hi = ppep.predictAssignment(
        rec, std::vector<std::size_t>(4, 4), true);
    const auto mixed = ppep.predictAssignment(rec, {0, 4, 0, 4}, true);
    EXPECT_GT(mixed.chip_power_w, lo.chip_power_w);
    EXPECT_LT(mixed.chip_power_w, hi.chip_power_w);
}

TEST(PpepDeath, RequiresTrainedPowerModel)
{
    const auto &s = SharedModels::get();
    EXPECT_DEATH(Ppep(s.cfg, ChipPowerModel{}, s.models.pg),
                 "trained power model");
}

} // namespace
